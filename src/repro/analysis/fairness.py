"""Fairness metrics over per-job stretches.

The stretch objective exists *because of fairness* (§I: short jobs must
not wait like long ones; [14] links max-stretch to distributive
justice).  Minimizing the maximum is one lens; this module adds the
standard complementary ones so schedules can be compared on the whole
stretch distribution:

* Jain's fairness index over stretches (1 = perfectly even);
* percentiles / tail ratios (p99 vs median);
* the Gini coefficient of the stretch distribution;
* a compact :class:`FairnessReport` bundling them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1]."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ModelError("jain_index of an empty vector is undefined")
    if (values < 0).any():
        raise ModelError("jain_index requires non-negative values")
    denom = values.size * float((values**2).sum())
    if denom == 0:
        return 1.0
    return float(values.sum()) ** 2 / denom


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1) (0 = perfectly equal)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        raise ModelError("gini of an empty vector is undefined")
    if (values < 0).any():
        raise ModelError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2 * ranks - n - 1) @ values / (n * total))


@dataclass(frozen=True)
class FairnessReport:
    """Distributional summary of per-job stretches."""

    n_jobs: int
    max: float
    mean: float
    median: float
    p90: float
    p99: float
    jain: float
    gini: float

    @property
    def tail_ratio(self) -> float:
        """p99 / median — how much worse the unluckiest jobs fare."""
        return self.p99 / self.median if self.median > 0 else float("inf")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"stretches over {self.n_jobs} jobs: max {self.max:.2f}, "
            f"median {self.median:.2f}, p99 {self.p99:.2f}, "
            f"Jain {self.jain:.3f}, Gini {self.gini:.3f}"
        )


def fairness_report(stretches: np.ndarray) -> FairnessReport:
    """Build a :class:`FairnessReport` from a stretch vector."""
    values = np.asarray(stretches, dtype=np.float64)
    if values.size == 0:
        raise ModelError("fairness_report needs at least one stretch")
    return FairnessReport(
        n_jobs=values.size,
        max=float(values.max()),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        p99=float(np.percentile(values, 99)),
        jain=jain_index(values),
        gini=gini_coefficient(values),
    )
