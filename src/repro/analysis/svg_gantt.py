"""SVG Gantt rendering (the graphical sibling of :mod:`repro.analysis.gantt`).

One horizontal lane per compute resource plus optional communication
lanes; execution boxes are solid, uplinks/downlinks hatched lighter;
each job keeps one stable color.  Dependency-free — the output opens in
any browser.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.gantt import _collect_lanes
from repro.core.errors import ModelError
from repro.core.schedule import Schedule

_LANE_H = 22
_LABEL_W = 120
_MARGIN = 12

#: Job colors, cycled (Okabe-Ito-ish).
PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#999999",
)


def job_color(i: int) -> str:
    """Stable fill color for job ``i``."""
    return PALETTE[i % len(PALETTE)]


def render_gantt_svg(
    schedule: Schedule,
    *,
    width: int = 900,
    show_comm: bool = True,
) -> str:
    """Render ``schedule`` as an SVG document (string)."""
    span = schedule.makespan()
    if span <= 0:
        raise ModelError("cannot render an empty schedule")
    lanes = _collect_lanes(schedule, show_comm)
    plot_w = width - _LABEL_W - 2 * _MARGIN
    height = 2 * _MARGIN + _LANE_H * len(lanes) + 30

    def px(t: float) -> float:
        return _LABEL_W + _MARGIN + t / span * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for row, lane in enumerate(lanes):
        y = _MARGIN + row * _LANE_H
        is_comm = "up" in lane.label or "dn" in lane.label
        label = lane.label.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        parts.append(
            f'<text x="{_LABEL_W}" y="{y + _LANE_H - 8}" text-anchor="end">'
            f"{label}</text>"
        )
        parts.append(
            f'<line x1="{px(0)}" y1="{y + _LANE_H - 4}" x2="{px(span)}" '
            f'y2="{y + _LANE_H - 4}" stroke="#eeeeee"/>'
        )
        for start, end, job in lane.segments:
            x0, x1 = px(start), px(end)
            opacity = "0.45" if is_comm else "0.9"
            parts.append(
                f'<rect x="{x0:.1f}" y="{y + 2}" width="{max(x1 - x0, 1.0):.1f}" '
                f'height="{_LANE_H - 8}" fill="{job_color(job)}" '
                f'fill-opacity="{opacity}" stroke="#333333" stroke-width="0.5">'
                f"<title>J{job}: [{start:g}, {end:g})</title></rect>"
            )

    axis_y = _MARGIN + len(lanes) * _LANE_H + 8
    parts.append(
        f'<line x1="{px(0)}" y1="{axis_y}" x2="{px(span)}" y2="{axis_y}" stroke="black"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = frac * span
        parts.append(
            f'<line x1="{px(t)}" y1="{axis_y}" x2="{px(t)}" y2="{axis_y + 4}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<text x="{px(t)}" y="{axis_y + 16}" text-anchor="middle">{t:g}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_gantt_svg(schedule: Schedule, path: str | Path, **kwargs) -> None:
    """Write :func:`render_gantt_svg` output to a file."""
    Path(path).write_text(render_gantt_svg(schedule, **kwargs))
