"""ASCII Gantt rendering of schedules.

One row per compute resource (plus, optionally, one send and one
receive lane per edge unit and per cloud processor), time rendered
left-to-right, each job drawn with a stable single-character symbol.
Useful to eyeball small schedules — the Figure 1 example renders to a
chart directly comparable with the paper's figure.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

from repro.core.resources import Resource, ResourceKind
from repro.core.schedule import Schedule

#: Symbols assigned to jobs round-robin (job 0 -> '0', job 36 -> 'a', ...).
_SYMBOLS = string.digits + string.ascii_uppercase + string.ascii_lowercase


def job_symbol(i: int) -> str:
    """Stable one-character symbol for job ``i``."""
    return _SYMBOLS[i % len(_SYMBOLS)]


@dataclass(frozen=True)
class _Lane:
    label: str
    segments: list  # list of (start, end, job)


def _collect_lanes(schedule: Schedule, show_comm: bool) -> list[_Lane]:
    platform = schedule.instance.platform
    compute: dict[tuple[str, int], list] = {}
    send: dict[int, list] = {j: [] for j in range(platform.n_edge)}
    recv: dict[int, list] = {j: [] for j in range(platform.n_edge)}
    c_recv: dict[int, list] = {k: [] for k in range(platform.n_cloud)}
    c_send: dict[int, list] = {k: [] for k in range(platform.n_cloud)}
    for j in range(platform.n_edge):
        compute[("edge", j)] = []
    for k in range(platform.n_cloud):
        compute[("cloud", k)] = []

    for js in schedule.iter_job_schedules():
        origin = schedule.instance.jobs[js.job_id].origin
        for attempt in js.attempts:
            res = attempt.resource
            key = ("edge", res.index) if res.is_edge else ("cloud", res.index)
            for iv in attempt.execution:
                compute[key].append((iv.start, iv.end, js.job_id))
            if res.is_cloud:
                for iv in attempt.uplink:
                    send[origin].append((iv.start, iv.end, js.job_id))
                    c_recv[res.index].append((iv.start, iv.end, js.job_id))
                for iv in attempt.downlink:
                    c_send[res.index].append((iv.start, iv.end, js.job_id))
                    recv[origin].append((iv.start, iv.end, js.job_id))

    lanes = []
    for j in range(platform.n_edge):
        lanes.append(_Lane(f"edge[{j}]", sorted(compute[("edge", j)])))
        if show_comm:
            if send[j]:
                lanes.append(_Lane(f"edge[{j}] up>", sorted(send[j])))
            if recv[j]:
                lanes.append(_Lane(f"edge[{j}] <dn", sorted(recv[j])))
    for k in range(platform.n_cloud):
        lanes.append(_Lane(f"cloud[{k}]", sorted(compute[("cloud", k)])))
        if show_comm:
            if c_recv[k]:
                lanes.append(_Lane(f"cloud[{k}] >up", sorted(c_recv[k])))
            if c_send[k]:
                lanes.append(_Lane(f"cloud[{k}] dn<", sorted(c_send[k])))
    return lanes


def render_gantt(
    schedule: Schedule,
    *,
    width: int = 80,
    show_comm: bool = True,
    show_legend: bool = True,
) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    ``width`` is the number of character cells for the time axis; a
    cell is drawn with a job's symbol when that job occupies more than
    half of the cell's span on that lane.
    """
    if width < 10:
        raise ValueError(f"width must be at least 10, got {width}")
    span = schedule.makespan()
    if span <= 0:
        return "(empty schedule)"
    lanes = _collect_lanes(schedule, show_comm)
    label_w = max(len(lane.label) for lane in lanes) if lanes else 0
    cell = span / width

    lines = []
    for lane in lanes:
        cells = [" "] * width
        for start, end, job in lane.segments:
            c0 = int(start / cell)
            c1 = max(c0 + 1, int(round(end / cell)))
            for c in range(c0, min(c1, width)):
                # Majority occupancy of the cell wins.
                cell_start, cell_end = c * cell, (c + 1) * cell
                overlap = min(end, cell_end) - max(start, cell_start)
                if overlap >= 0.5 * cell or (c == c0 and overlap > 0 and cells[c] == " "):
                    cells[c] = job_symbol(job)
        lines.append(f"{lane.label:<{label_w}} |{''.join(cells)}|")

    axis = f"{'':<{label_w}} |0{'':{width - 2}}{span:g}|"
    lines.append(axis)

    if show_legend:
        jobs = sorted(js.job_id for js in schedule.iter_job_schedules() if js.attempts)
        legend = "  ".join(f"{job_symbol(i)}=J{i}" for i in jobs)
        lines.append(f"jobs: {legend}")
    return "\n".join(lines)
