"""Empirical competitiveness: heuristics vs the relaxation lower bound.

The paper leaves competitive bounds for the edge-cloud heuristics as
future work (§VII).  This module measures the *empirical* counterpart:
the ratio of each heuristic's max-stretch to the instance's relaxation
lower bound (:mod:`repro.offline.bounds`), over a distribution of
instances.  The reported ratios are upper bounds on the true optimality
gaps (the bound may be loose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.offline.bounds import max_stretch_lower_bound
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.util.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class CompetitiveSummary:
    """Ratio statistics for one scheduler over a sample of instances."""

    scheduler: str
    n_instances: int
    mean_ratio: float
    max_ratio: float
    median_ratio: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.scheduler}: ratio-to-bound mean {self.mean_ratio:.2f}, "
            f"median {self.median_ratio:.2f}, worst {self.max_ratio:.2f} "
            f"over {self.n_instances} instances"
        )


def empirical_competitive_ratios(
    instance_factory: Callable[[np.random.Generator], Instance],
    scheduler_names: Sequence[str],
    *,
    n_instances: int = 20,
    seed: SeedLike = 0,
    bound_eps: float = 1e-3,
) -> list[CompetitiveSummary]:
    """Measure max-stretch / lower-bound ratios over sampled instances.

    Every scheduler sees the same instances (paired comparison).
    """
    rngs = spawn_generators(seed, n_instances)
    ratios: dict[str, list[float]] = {name: [] for name in scheduler_names}
    for rng in rngs:
        instance = instance_factory(rng)
        bound = max_stretch_lower_bound(instance, eps=bound_eps)
        if bound <= 0:
            continue
        for name in scheduler_names:
            scheduler = (
                make_scheduler(name, seed=rng) if name == "random" else make_scheduler(name)
            )
            result = simulate(instance, scheduler, record_trace=False)
            ratios[name].append(result.max_stretch / bound)

    out = []
    for name in scheduler_names:
        values = np.asarray(ratios[name])
        out.append(
            CompetitiveSummary(
                scheduler=name,
                n_instances=len(values),
                mean_ratio=float(values.mean()) if values.size else np.nan,
                max_ratio=float(values.max()) if values.size else np.nan,
                median_ratio=float(np.median(values)) if values.size else np.nan,
            )
        )
    return out
