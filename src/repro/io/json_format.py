"""JSON (de)serialization of instances, schedules, and results.

A stable on-disk format so that generated instances can be archived and
re-run, and simulated schedules can be inspected or re-validated by
other tools.  The format is versioned; loaders reject unknown versions
rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.errors import ModelError, ScheduleError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import Resource, ResourceKind, cloud, edge
from repro.core.schedule import Schedule

FORMAT_VERSION = 1


# -- instances -----------------------------------------------------------------


def platform_to_dict(platform: Platform) -> dict[str, Any]:
    """Platform as plain JSON-ready data."""
    return {
        "edge_speeds": list(platform.edge_speeds),
        "cloud_speeds": list(platform.cloud_speeds),
    }


def platform_from_dict(data: dict[str, Any]) -> Platform:
    """Inverse of :func:`platform_to_dict`."""
    try:
        return Platform(tuple(data["edge_speeds"]), tuple(data["cloud_speeds"]))
    except KeyError as exc:
        raise ModelError(f"platform data missing key: {exc}") from exc


def job_to_dict(job: Job) -> dict[str, Any]:
    """Job as plain JSON-ready data."""
    return {
        "origin": job.origin,
        "work": job.work,
        "release": job.release,
        "up": job.up,
        "dn": job.dn,
    }


def job_from_dict(data: dict[str, Any]) -> Job:
    """Inverse of :func:`job_to_dict`."""
    try:
        return Job(
            origin=int(data["origin"]),
            work=float(data["work"]),
            release=float(data.get("release", 0.0)),
            up=float(data.get("up", 0.0)),
            dn=float(data.get("dn", 0.0)),
        )
    except KeyError as exc:
        raise ModelError(f"job data missing key: {exc}") from exc


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Instance as plain JSON-ready data (versioned)."""
    return {
        "format_version": FORMAT_VERSION,
        "platform": platform_to_dict(instance.platform),
        "jobs": [job_to_dict(job) for job in instance.jobs],
    }


def instance_from_dict(data: dict[str, Any]) -> Instance:
    """Inverse of :func:`instance_to_dict`."""
    _check_version(data)
    platform = platform_from_dict(data["platform"])
    jobs = [job_from_dict(j) for j in data.get("jobs", [])]
    return Instance.create(platform, jobs)


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: str | Path) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# -- schedules -------------------------------------------------------------------


def _resource_to_dict(resource: Resource) -> dict[str, Any]:
    return {"kind": resource.kind.value, "index": resource.index}


def _resource_from_dict(data: dict[str, Any]) -> Resource:
    kind = data.get("kind")
    if kind == ResourceKind.EDGE.value:
        return edge(int(data["index"]))
    if kind == ResourceKind.CLOUD.value:
        return cloud(int(data["index"]))
    raise ScheduleError(f"unknown resource kind {kind!r}")


def _intervals_to_list(intervals) -> list[list[float]]:
    return [[iv.start, iv.end] for iv in intervals]


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Schedule (all attempts, all intervals) as JSON-ready data."""
    jobs = []
    for js in schedule.iter_job_schedules():
        jobs.append(
            {
                "job": js.job_id,
                "completion": js.completion,
                "attempts": [
                    {
                        "resource": _resource_to_dict(a.resource),
                        "execution": _intervals_to_list(a.execution),
                        "uplink": _intervals_to_list(a.uplink),
                        "downlink": _intervals_to_list(a.downlink),
                    }
                    for a in js.attempts
                ],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "instance": instance_to_dict(schedule.instance),
        "jobs": jobs,
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict` (rebuilds the instance too)."""
    _check_version(data)
    instance = instance_from_dict(data["instance"])
    schedule = Schedule(instance)
    for job_data in data.get("jobs", []):
        i = int(job_data["job"])
        for attempt_data in job_data.get("attempts", []):
            attempt = schedule.new_attempt(i, _resource_from_dict(attempt_data["resource"]))
            for key, target in (
                ("execution", attempt.execution),
                ("uplink", attempt.uplink),
                ("downlink", attempt.downlink),
            ):
                for start, end in attempt_data.get(key, []):
                    target.add(Interval(start, end))
        if job_data.get("completion") is not None:
            schedule.set_completion(i, float(job_data["completion"]))
    return schedule


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule (with its instance) to a JSON file."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()))


# -- availability ------------------------------------------------------------


def availability_to_dict(availability) -> dict[str, Any]:
    """Cloud availability windows as JSON-ready data."""
    return {
        "format_version": FORMAT_VERSION,
        "windows": {
            str(k): [[iv.start, iv.end] for iv in ivs]
            for k, ivs in availability.windows.items()
        },
    }


def availability_from_dict(data: dict[str, Any]):
    """Inverse of :func:`availability_to_dict`."""
    from repro.sim.availability import CloudAvailability

    _check_version(data)
    windows = {
        int(k): tuple(Interval(a, b) for a, b in ivs)
        for k, ivs in data.get("windows", {}).items()
    }
    return CloudAvailability(windows)


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format_version {version!r}; this build reads {FORMAT_VERSION}"
        )
