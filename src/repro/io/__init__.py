"""Serialization: archive instances and schedules as versioned JSON."""

from repro.io.json_format import (
    FORMAT_VERSION,
    availability_from_dict,
    availability_to_dict,
    instance_from_dict,
    instance_to_dict,
    job_from_dict,
    job_to_dict,
    load_instance,
    load_schedule,
    platform_from_dict,
    platform_to_dict,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "FORMAT_VERSION",
    "availability_to_dict",
    "availability_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "job_to_dict",
    "job_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]
