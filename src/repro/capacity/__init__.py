"""Cross-layer deliverable-capacity reasoning.

Every heuristic of the paper ultimately asks one question — *how much
work can resource k deliver over [t, d]?* — and before this layer the
codebase answered it four different ways (availability windows,
placement-kernel reservation timelines, ledger blocking, fault
intervals).  :class:`~repro.capacity.outlook.CapacityOutlook` is the one
object that composes all the sources; see ``docs/MODEL.md`` ("Capacity
outlook") for the model-level contract.
"""

from repro.capacity.outlook import CapacityOutlook, ExpectationDiscount

__all__ = ["CapacityOutlook", "ExpectationDiscount"]
