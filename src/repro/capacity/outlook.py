"""The :class:`CapacityOutlook`: one answer to "what can resource k deliver?".

The outlook composes, per resource (edge unit, cloud processor, access
link), the three sources of capacity information a run has:

* **static windows** — planned cloud co-tenancy
  (:class:`~repro.sim.availability.CloudAvailability`): compute cycles
  gone for known intervals, ports untouched;
* **current health** — the fault trace's *present* state
  (:class:`~repro.faults.trace.FaultTrace`).  Only ``t == now`` is ever
  consulted; future fault boundaries are clairvoyant and never queried;
* an optional **expectation discount**
  (:class:`ExpectationDiscount`) derived from the MTBF/MTTR parameters
  the trace was drawn from
  (:class:`~repro.faults.trace.FaultRates`): steady-state availability
  scales effective rates, the memoryless expected remaining repair
  (MTTR) floors the earliest start of a currently-down resource, and
  the expected-rework integral prices restart-on-crash re-execution.

Undiscounted outlooks are *transparent by construction*: effective rates
are the platform speed arrays themselves (bit-identical — dividing by
them reproduces the exact IEEE-754 operations consumers performed before
this layer existed) and every earliest-start floor equals ``t``.  The
golden determinism suite pins that transparency end to end.

Consumers: :class:`~repro.sim.view.SimulationView` serves duration
estimates from outlook rates, the placement kernel
(:mod:`repro.schedulers.placement`) builds its rate tables and
reservation floors from it, and the engine blocks the
:class:`~repro.sim.ledger.ResourceLedger` from the outlook's composed
down-set at every from-scratch activation round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.platform import Platform
from repro.faults.trace import DOMAIN_CLOUD, DOMAIN_EDGE, DOMAIN_LINK, FaultTrace
from repro.sim.availability import CloudAvailability

_INF = float("inf")


@dataclass(frozen=True)
class ExpectationDiscount:
    """Per-class expectation discounting derived from renewal parameters.

    ``*_availability`` is the steady-state available fraction
    ``mtbf / (mtbf + mttr)`` of the class (1.0 when the class never
    fails); ``*_mttr`` the expected remaining repair of a currently-down
    resource (memoryless exponential repair, so the expectation does not
    depend on how long the resource has been down); ``*_mtbf`` the mean
    up-time, used by the expected-rework integral.
    """

    edge_availability: float = 1.0
    cloud_availability: float = 1.0
    link_availability: float = 1.0
    edge_mttr: float = 0.0
    cloud_mttr: float = 0.0
    link_mttr: float = 0.0
    edge_mtbf: float = _INF
    cloud_mtbf: float = _INF
    link_mtbf: float = _INF

    @classmethod
    def from_rates(cls, rates) -> "ExpectationDiscount":
        """Build from a :class:`~repro.faults.trace.FaultRates` (or None)."""
        if rates is None:
            return cls()
        kw = {}
        for name, cl in (("edge", rates.edge), ("cloud", rates.cloud), ("link", rates.link)):
            if cl is not None:
                kw[f"{name}_availability"] = cl.availability
                kw[f"{name}_mttr"] = cl.mttr
                kw[f"{name}_mtbf"] = cl.mtbf
        return cls(**kw)

    def availability_of(self, domain: str) -> float:
        """Steady-state available fraction of ``domain``."""
        return {
            DOMAIN_EDGE: self.edge_availability,
            DOMAIN_CLOUD: self.cloud_availability,
            DOMAIN_LINK: self.link_availability,
        }[domain]

    def recovery_of(self, domain: str) -> float:
        """Expected remaining repair time of a down resource of ``domain``."""
        return {
            DOMAIN_EDGE: self.edge_mttr,
            DOMAIN_CLOUD: self.cloud_mttr,
            DOMAIN_LINK: self.link_mttr,
        }[domain]

    def expected_rework(self, duration: float, domain: str) -> float:
        """Expected busy time to finish ``duration`` under restart-on-crash.

        With failures arriving at rate ``1/mtbf`` and progress lost on
        each crash, the classic renewal argument gives
        ``mtbf * (e^{duration/mtbf} - 1)`` expected processing time —
        superlinear in ``duration``, which is why long jobs should avoid
        failure-prone resources disproportionately.  Repair time is not
        included (the availability factor already accounts for it in
        expectation).
        """
        mtbf = {
            DOMAIN_EDGE: self.edge_mtbf,
            DOMAIN_CLOUD: self.cloud_mtbf,
            DOMAIN_LINK: self.link_mtbf,
        }[domain]
        if not math.isfinite(mtbf):
            return duration
        return mtbf * math.expm1(duration / mtbf)


#: The identity discount (no fault model): rates and floors untouched.
NO_DISCOUNT = ExpectationDiscount()


class CapacityOutlook:
    """Deliverable-capacity and earliest-completion queries per resource.

    One outlook is built per run (the inputs — platform, windows, trace,
    discount — are all immutable) and shared by every consumer.
    ``n_queries`` counts the public capacity queries served, which the
    scheduler telemetry exports as ``scheduler.outlook_queries``.
    """

    __slots__ = (
        "platform",
        "availability",
        "faults",
        "discount",
        "discounted",
        "n_queries",
        "n_delta_updates",
        "_edge_rates",
        "_cloud_rates",
        "_link_rate",
        "_has_windows",
        "_has_faults",
        "_win_clouds",
        "_blocked_key",
        "_blocked_cache",
    )

    def __init__(
        self,
        platform: Platform,
        availability: CloudAvailability | None = None,
        faults: FaultTrace | None = None,
        discount: ExpectationDiscount | None = None,
    ):
        self.platform = platform
        self.availability = availability if availability is not None else CloudAvailability.always_available()
        self.faults = faults if faults is not None else FaultTrace.none()
        self.discount = discount if discount is not None else NO_DISCOUNT
        self.discounted = self.discount is not NO_DISCOUNT and self.discount != NO_DISCOUNT
        self.n_queries = 0

        edge = np.asarray(platform.edge_speeds, dtype=np.float64)
        cloud = np.asarray(platform.cloud_speeds, dtype=np.float64)
        if self.discounted:
            # Effective rates: speed scaled by the steady-state available
            # fraction of the resource's fault class.
            edge = edge * self.discount.edge_availability
            cloud = cloud * self.discount.cloud_availability
            self._link_rate = self.discount.link_availability
        else:
            # Transparent mode: the arrays ARE the platform speeds, so
            # every consumer division is the bitwise-identical operation
            # it performed before the capacity layer existed.
            self._link_rate = 1.0
        self._edge_rates = edge
        self._cloud_rates = cloud
        self._has_windows = bool(self.availability.windows)
        self._has_faults = not self.faults.is_empty
        self._win_clouds = tuple(sorted(self.availability.windows))
        #: Delta cache of :meth:`blocked_at`: the composed down-state is
        #: piecewise constant between fault/window boundaries, so one
        #: scan per constancy interval suffices.  ``n_delta_updates``
        #: counts the queries served from the cache (exported as
        #: ``scheduler.outlook_delta_updates``).
        self.n_delta_updates = 0
        self._blocked_key: tuple[int, int] | None = None
        self._blocked_cache: tuple[list[int], list[int], list[int], list[int]] | None = None

    # -- effective rates -------------------------------------------------------

    def edge_rates(self) -> np.ndarray:
        """Effective compute rate of every edge unit (read-only array)."""
        self.n_queries += 1
        return self._edge_rates

    def cloud_rates(self) -> np.ndarray:
        """Effective compute rate of every cloud processor."""
        self.n_queries += 1
        return self._cloud_rates

    def link_rate(self) -> float:
        """Effective transfer rate of the access links (1.0 undiscounted)."""
        self.n_queries += 1
        return self._link_rate

    # -- composed down-state ---------------------------------------------------

    def blocked_key(self, t: float) -> tuple[int, int]:
        """Constancy-interval key of the composed down-state at ``t``.

        Equal keys guarantee equal :meth:`blocked_at` answers (both the
        fault trace's down-state and window membership are piecewise
        constant on half-open intervals), so consumers can use key
        equality as an exact "the blocked set did not change" test —
        the engine's incremental activation resumes grants across
        events exactly when this key is unchanged.  Not counted as a
        capacity query: it reads the boundary indices, not the state.
        """
        fk = self.faults.interval_key(t) if self._has_faults else 0
        wk = self.availability.interval_key(t) if self._has_windows else 0
        return (fk, wk)

    def blocked_at(self, t: float) -> tuple[list[int], list[int], list[int], list[int]]:
        """Resources that cannot be granted at instant ``t``.

        Returns ``(edges, clouds, links, cloud_compute_only)``: crashed
        edge units, crashed cloud processors and downed links from the
        fault trace (the full resource is unusable), plus cloud
        processors whose *compute* slot is taken by a static
        co-tenancy window (their ports stay usable).  This is the set
        the engine blocks in the ledger at every from-scratch round.

        Served from the delta cache when ``t`` falls in the same
        constancy interval as the previous query (see
        :meth:`blocked_key`); callers must treat the lists as
        read-only.
        """
        self.n_queries += 1
        key = self.blocked_key(t)
        if key == self._blocked_key:
            self.n_delta_updates += 1
            return self._blocked_cache
        if self._has_faults:
            edges, clouds, links = self.faults.down_at(t)
        else:
            edges, clouds, links = [], [], []
        busy: list[int] = []
        if self._has_windows:
            av = self.availability
            busy = [k for k in self._win_clouds if not av.is_available(k, t)]
        self._blocked_key = key
        self._blocked_cache = (edges, clouds, links, busy)
        return self._blocked_cache

    def next_boundary(self, t: float) -> float:
        """Earliest capacity-changing instant strictly after ``t``."""
        self.n_queries += 1
        b = _INF
        if self._has_windows:
            b = self.availability.next_boundary(t)
        if self._has_faults:
            fb = self.faults.next_boundary(t)
            if fb < b:
                b = fb
        return b

    # -- earliest-start floors -------------------------------------------------
    #
    # Floors answer "when could resource k next start work, in
    # expectation?".  Undiscounted they are exactly ``t`` (current fault
    # state is then the engine's job to enforce, not the scheduler's to
    # anticipate).  Discounted, a currently-down resource is floored at
    # ``t + E[remaining repair]`` — observable current health plus the
    # model's memoryless repair expectation, never the trace's actual
    # (future) recovery instant — and a cloud inside a *planned* window
    # is floored at the window's published end.

    def earliest_edge_start(self, j: int, t: float) -> float:
        """Expected earliest instant edge unit ``j`` can start new work."""
        self.n_queries += 1
        if self.discounted and not self.faults.edge_up(j, t):
            return t + self.discount.edge_mttr
        return t

    def earliest_cloud_start(self, k: int, t: float) -> float:
        """Expected earliest instant cloud ``k`` can start computing."""
        self.n_queries += 1
        if not self.discounted:
            return t
        floor = t
        if not self.faults.cloud_up(k, t):
            floor = t + self.discount.cloud_mttr
        if self._has_windows:
            # Planned co-tenancy windows are published, so their end is
            # fair game (unlike fault recovery instants).
            for iv in self.availability.windows.get(k, ()):
                if iv.contains_time(t):
                    if iv.end > floor:
                        floor = iv.end
                    break
        return floor

    def earliest_link_start(self, o: int, t: float) -> float:
        """Expected earliest instant edge ``o``'s access link can transfer."""
        self.n_queries += 1
        if self.discounted and not self.faults.link_up(o, t):
            return t + self.discount.link_mttr
        return t

    # -- window math -----------------------------------------------------------

    def deliverable_cloud_work(self, k: int, t0: float, t1: float) -> float:
        """Work units cloud ``k`` can deliver over ``[t0, t1)``.

        Effective rate times the available time in the window, with the
        static co-tenancy intervals carved out.
        """
        self.n_queries += 1
        if t1 <= t0:
            return 0.0
        busy = 0.0
        for iv in self.availability.windows.get(k, ()):
            lo = iv.start if iv.start > t0 else t0
            hi = iv.end if iv.end < t1 else t1
            if hi > lo:
                busy += hi - lo
        return float(self._cloud_rates[k]) * ((t1 - t0) - busy)

    def deliverable_edge_work(self, j: int, t0: float, t1: float) -> float:
        """Work units edge unit ``j`` can deliver over ``[t0, t1)``."""
        self.n_queries += 1
        if t1 <= t0:
            return 0.0
        return float(self._edge_rates[j]) * (t1 - t0)

    def earliest_cloud_completion(self, k: int, t: float, work: float) -> float:
        """Instant ``work`` units finish on cloud ``k`` when started at ``t``.

        Walks the static unavailability windows: compute pauses during a
        window and resumes at its end (exactly the engine's semantics
        for planned co-tenancy).  Faults are *not* walked — their future
        boundaries are not knowable; discounted mode prices them through
        the effective rate and the start floor instead.
        """
        self.n_queries += 1
        rate = float(self._cloud_rates[k])
        if rate <= 0.0:
            raise ModelError(f"cloud[{k}] has non-positive effective rate {rate}")
        cur = self.earliest_cloud_start(k, t) if self.discounted else t
        remaining = work
        for iv in self.availability.windows.get(k, ()):
            if iv.end <= cur:
                continue
            if iv.contains_time(cur):
                cur = iv.end
                continue
            gap = iv.start - cur
            if remaining <= gap * rate:
                break
            remaining -= gap * rate
            cur = iv.end
        return cur + remaining / rate

    def earliest_edge_completion(self, j: int, t: float, work: float) -> float:
        """Instant ``work`` units finish on edge ``j`` when started at ``t``."""
        self.n_queries += 1
        start = self.earliest_edge_start(j, t) if self.discounted else t
        return start + work / float(self._edge_rates[j])
