"""Instance generators: random/CCR and Kang (§VI-A), arrival processes, traces."""

from repro.workloads.arrivals import (
    ArrivalConfig,
    generate_bursty_instance,
    generate_poisson_instance,
)

from repro.workloads.kang import (
    Channel,
    Device,
    EdgeUnitType,
    KangConfig,
    draw_edge_types,
    generate_kang_instance,
    kang_platform,
)
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)
from repro.workloads.stats import InstanceStats, describe_instance
from repro.workloads.trace_replay import jobs_from_rows, load_trace, save_trace
from repro.workloads.release import (
    DEFAULT_LOAD,
    aggregated_speed,
    draw_release_dates,
    max_release_date,
)

__all__ = [
    "ArrivalConfig",
    "generate_poisson_instance",
    "generate_bursty_instance",
    "load_trace",
    "save_trace",
    "jobs_from_rows",
    "InstanceStats",
    "describe_instance",
    "RandomInstanceConfig",
    "generate_random_instance",
    "paper_random_platform",
    "KangConfig",
    "EdgeUnitType",
    "Device",
    "Channel",
    "draw_edge_types",
    "kang_platform",
    "generate_kang_instance",
    "DEFAULT_LOAD",
    "aggregated_speed",
    "max_release_date",
    "draw_release_dates",
]
