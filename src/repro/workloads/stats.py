"""Descriptive statistics of instances (the workload-side sanity check).

The generators *target* a CCR and a load; this module measures what an
instance actually realizes, so experiments can report (and tests can
assert) that the workload knobs do what they claim:

* realized CCR — mean total communication over mean work;
* realized load — mean work arriving per unit time, over the aggregate
  platform speed (the paper's §VI-A load definition, inverted);
* Δ — the longest/shortest dedicated time ratio driving the
  competitive bounds;
* the fraction of jobs for which the cloud is the faster option.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.workloads.release import aggregated_speed


@dataclass(frozen=True)
class InstanceStats:
    """Realized workload characteristics of one instance."""

    n_jobs: int
    realized_ccr: float
    realized_load: float
    delta: float
    cloud_faster_fraction: float
    mean_work: float
    mean_comm: float
    release_span: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_jobs} jobs: CCR {self.realized_ccr:.2f}, "
            f"load {self.realized_load:.3f}, delta {self.delta:.1f}, "
            f"cloud faster for {self.cloud_faster_fraction:.0%}"
        )


def describe_instance(instance: Instance) -> InstanceStats:
    """Measure the realized workload characteristics of ``instance``."""
    if instance.n_jobs == 0:
        raise ModelError("cannot describe an empty instance")

    mean_work = float(instance.work.mean())
    mean_comm = float((instance.up + instance.dn).mean())
    realized_ccr = mean_comm / mean_work if mean_work > 0 else 0.0

    span = float(instance.release.max())
    total_work = float(instance.work.sum())
    speed = aggregated_speed(instance.platform)
    # The paper sets max_release = total_work / (load * speed); invert.
    realized_load = total_work / (span * speed) if span > 0 else float("inf")

    cloud_faster = float(
        (instance.best_cloud_time < instance.edge_time).mean()
    )

    return InstanceStats(
        n_jobs=instance.n_jobs,
        realized_ccr=realized_ccr,
        realized_load=realized_load,
        delta=instance.delta(),
        cloud_faster_fraction=cloud_faster,
        mean_work=mean_work,
        mean_comm=mean_comm,
        release_span=span,
    )
