"""Load-controlled release dates (Section VI-A).

    "the distribution of the release dates is chosen to control the
    load on edge processors [...] for a load l, the maximum release
    date is set to  sum(w_i) / (l * sum(s_j))  — the sum of the work
    over the aggregated speed is the average execution time using all
    processors; dividing this ratio by, say, l = 0.1, augments release
    times by a factor ten, thereby decreasing the load accordingly."

Release dates are then drawn uniformly in ``[0, max_release]``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.platform import Platform
from repro.util.rng import SeedLike, as_generator

#: The paper's default load (5%).
DEFAULT_LOAD = 0.05


def aggregated_speed(platform: Platform) -> float:
    """Total speed of all processors (edge + cloud)."""
    return float(sum(platform.edge_speeds) + sum(platform.cloud_speeds))


def max_release_date(works: Sequence[float], platform: Platform, load: float) -> float:
    """The latest possible release date for the target ``load``."""
    if load <= 0:
        raise ModelError(f"load must be positive, got {load}")
    total_work = float(np.sum(np.asarray(works, dtype=np.float64)))
    return total_work / (load * aggregated_speed(platform))


def draw_release_dates(
    works: Sequence[float],
    platform: Platform,
    load: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Uniform release dates in ``[0, max_release]`` for the target load."""
    rng = as_generator(seed)
    horizon = max_release_date(works, platform, load)
    return rng.uniform(0.0, horizon, size=len(works))
