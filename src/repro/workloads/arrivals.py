"""Arrival-process workloads beyond the paper's uniform releases.

The paper controls load by drawing releases uniformly over a horizon
(§VI-A).  Real edge workloads are streamier: this module adds

* Poisson arrivals per edge unit (:func:`generate_poisson_instance`),
* bursty on/off arrivals — a two-state modulated Poisson process
  (:func:`generate_bursty_instance`),

both with the same work/communication distributions as the random
instances, so the heuristics can be stress-tested on arrival patterns
the uniform model smooths away (transient overload during bursts is
exactly where max-stretch fairness is hardest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.util.rng import SeedLike, as_generator
from repro.workloads.random_uniform import RandomInstanceConfig, paper_random_platform


@dataclass(frozen=True)
class ArrivalConfig:
    """Common knobs of the arrival-process generators."""

    n_jobs: int = 100
    ccr: float = 1.0
    rate_per_unit: float = 0.05  # mean arrivals per time unit per edge unit
    work_lo: float = 1.0
    work_hi: float = 19.0

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ModelError(f"n_jobs must be non-negative, got {self.n_jobs}")
        if self.ccr < 0:
            raise ModelError(f"ccr must be non-negative, got {self.ccr}")
        if self.rate_per_unit <= 0:
            raise ModelError(f"rate_per_unit must be positive, got {self.rate_per_unit}")
        if not 0 < self.work_lo <= self.work_hi:
            raise ModelError("need 0 < work_lo <= work_hi")


def _draw_sizes(config: ArrivalConfig, n: int, rng: np.random.Generator):
    base = RandomInstanceConfig(
        n_jobs=n, ccr=config.ccr, work_lo=config.work_lo, work_hi=config.work_hi
    )
    works = rng.uniform(config.work_lo, config.work_hi, size=n)
    mean_comm = config.ccr * base.mean_work / 2.0
    rel = (config.work_hi - config.work_lo) / (config.work_hi + config.work_lo)
    lo, hi = mean_comm * (1 - rel), mean_comm * (1 + rel)
    ups = rng.uniform(lo, hi, size=n)
    dns = rng.uniform(lo, hi, size=n)
    return works, ups, dns


def generate_poisson_instance(
    config: ArrivalConfig = ArrivalConfig(),
    *,
    platform: Platform | None = None,
    seed: SeedLike = None,
) -> Instance:
    """Independent Poisson arrivals on every edge unit.

    Arrival times are accumulated per unit until ``n_jobs`` jobs exist
    platform-wide, then the earliest ``n_jobs`` are kept (so the total
    is exact and units stay statistically symmetric).
    """
    rng = as_generator(seed)
    platform = platform or paper_random_platform()
    n = config.n_jobs
    if n == 0:
        return Instance.create(platform, [])

    per_unit = int(np.ceil(n / platform.n_edge)) + 2
    arrivals: list[tuple[float, int]] = []
    for j in range(platform.n_edge):
        gaps = rng.exponential(1.0 / config.rate_per_unit, size=per_unit)
        times = np.cumsum(gaps)
        arrivals.extend((float(t), j) for t in times)
    arrivals.sort()
    arrivals = arrivals[:n]

    works, ups, dns = _draw_sizes(config, n, rng)
    jobs = [
        Job(origin=o, work=float(works[i]), release=t, up=float(ups[i]), dn=float(dns[i]))
        for i, (t, o) in enumerate(arrivals)
    ]
    return Instance.create(platform, jobs)


def generate_bursty_instance(
    config: ArrivalConfig = ArrivalConfig(),
    *,
    burst_factor: float = 10.0,
    on_fraction: float = 0.2,
    cycle: float = 200.0,
    platform: Platform | None = None,
    seed: SeedLike = None,
) -> Instance:
    """On/off modulated Poisson arrivals (shared burst phase).

    During the ON phase (a ``on_fraction`` share of every ``cycle``)
    the arrival rate is ``burst_factor`` times the base rate; during
    OFF it is scaled down so the *average* rate matches
    ``config.rate_per_unit``.  All units burst together — the worst
    case for the shared cloud.
    """
    if burst_factor < 1:
        raise ModelError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0 < on_fraction <= 1:
        raise ModelError(f"on_fraction must be in (0, 1], got {on_fraction}")
    if cycle <= 0:
        raise ModelError(f"cycle must be positive, got {cycle}")

    rng = as_generator(seed)
    platform = platform or paper_random_platform()
    n = config.n_jobs
    if n == 0:
        return Instance.create(platform, [])

    # Normalize: on_rate*on + off_rate*(1-on) == base rate.
    base = config.rate_per_unit
    on_rate = base * burst_factor
    off_rate = max(
        (base - on_rate * on_fraction) / (1 - on_fraction) if on_fraction < 1 else on_rate,
        base * 1e-3,
    )

    def thin_keep(t: float) -> float:
        """Acceptance probability at time t (thinning from on_rate)."""
        in_burst = (t % cycle) < on_fraction * cycle
        return 1.0 if in_burst else off_rate / on_rate

    arrivals: list[tuple[float, int]] = []
    per_unit = int(np.ceil(n / platform.n_edge * (1.0 / max(on_fraction, 0.05)))) + 4
    for j in range(platform.n_edge):
        t = 0.0
        produced = 0
        while produced < per_unit:
            t += float(rng.exponential(1.0 / on_rate))
            if rng.random() < thin_keep(t):
                arrivals.append((t, j))
                produced += 1
    arrivals.sort()
    arrivals = arrivals[:n]

    works, ups, dns = _draw_sizes(config, n, rng)
    jobs = [
        Job(origin=o, work=float(works[i]), release=t, up=float(ups[i]), dn=float(dns[i]))
        for i, (t, o) in enumerate(arrivals)
    ]
    return Instance.create(platform, jobs)
