"""Random instances with a controlled Communication/Computation Ratio (§VI-A).

    "The jobs are generated using a uniform distribution for the
    execution and communication times, as well as the release date and
    the origin processor.  Both execution and communication times
    follow the same distribution.  The parameters of the distribution
    for communication are tied to the parameters of the distribution
    for execution, through the notion of
    Communication/Computation-Ratio (CCR) [...] both distributions are
    chosen so that the ratio between their expected values is equal to
    some value determined in advance."

Concretely (the paper does not publish the exact ranges):

* work ``w ~ U(work_lo, work_hi)`` (defaults mean 10);
* the *total* communication time ``up + dn`` has expectation
  ``CCR * E[w]``; up and dn are each drawn from a uniform distribution
  with mean ``CCR * E[w] / 2`` and the same relative half-width as the
  work distribution;
* origins uniform over edge units; releases uniform with the
  load-controlled horizon of :mod:`repro.workloads.release`.

The default platform is the paper's random-instance platform: 20 cloud
processors, 10 slow edge units (speed 0.1) and 10 fast ones (speed 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.util.rng import SeedLike, as_generator
from repro.workloads.release import DEFAULT_LOAD, max_release_date


def paper_random_platform() -> Platform:
    """20 cloud processors; 10 edge units at speed 0.1 and 10 at 0.5."""
    return Platform.create(edge_speeds=[0.1] * 10 + [0.5] * 10, n_cloud=20)


@dataclass(frozen=True)
class RandomInstanceConfig:
    """Parameters of the random-instance generator."""

    n_jobs: int = 100
    ccr: float = 1.0
    load: float = DEFAULT_LOAD
    work_lo: float = 1.0
    work_hi: float = 19.0

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ModelError(f"n_jobs must be non-negative, got {self.n_jobs}")
        if self.ccr < 0:
            raise ModelError(f"ccr must be non-negative, got {self.ccr}")
        if self.load <= 0:
            raise ModelError(f"load must be positive, got {self.load}")
        if not 0 < self.work_lo <= self.work_hi:
            raise ModelError(
                f"need 0 < work_lo <= work_hi, got [{self.work_lo}, {self.work_hi}]"
            )

    @property
    def mean_work(self) -> float:
        """Expected work of one job."""
        return 0.5 * (self.work_lo + self.work_hi)


def generate_random_instance(
    config: RandomInstanceConfig = RandomInstanceConfig(),
    *,
    platform: Platform | None = None,
    seed: SeedLike = None,
) -> Instance:
    """Draw one random instance per the paper's Section VI-A recipe."""
    rng = as_generator(seed)
    platform = platform or paper_random_platform()
    n = config.n_jobs

    works = rng.uniform(config.work_lo, config.work_hi, size=n)
    origins = rng.integers(0, platform.n_edge, size=n)

    # Each of up/dn: uniform with mean ccr*E[w]/2, same relative
    # half-width as the work distribution.
    mean_comm = config.ccr * config.mean_work / 2.0
    rel_half_width = (config.work_hi - config.work_lo) / (config.work_hi + config.work_lo)
    lo = mean_comm * (1.0 - rel_half_width)
    hi = mean_comm * (1.0 + rel_half_width)
    ups = rng.uniform(lo, hi, size=n)
    dns = rng.uniform(lo, hi, size=n)

    horizon = max_release_date(works, platform, config.load)
    releases = rng.uniform(0.0, horizon, size=n)

    jobs = [
        Job(
            origin=int(origins[i]),
            work=float(works[i]),
            release=float(releases[i]),
            up=float(ups[i]),
            dn=float(dns[i]),
        )
        for i in range(n)
    ]
    return Instance.create(platform, jobs)
