"""Kang instances (§VI-A), after Kang et al. [24] ("Neurosurgeon").

    "the execution time follows a normal distribution with mean 6 and
    relative standard deviation 1/4; the uplink communication time
    follows a normal distribution with mean t and relative standard
    deviation 1/4, where t = 95 with Wi-Fi, t = 180 with LTE, and
    t = 870 with 3G; the downlink communication time is 0 for all
    jobs [...] the speed of an edge processor is 6/11 if the processor
    computes on a GPU, and 6/37 for CPUs."

Each edge unit gets a device type (GPU/CPU) and a channel (Wi-Fi, LTE,
3G); every job inherits the channel of its origin unit.  Normal draws
are redrawn while non-positive (the distributions put ~10^-5 mass
there).  The paper's scenarios use 20 or 100 edge units and 10 cloud
processors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.util.rng import SeedLike, as_generator
from repro.workloads.release import DEFAULT_LOAD, max_release_date

#: Mean work and relative standard deviation of Kang jobs.
KANG_MEAN_WORK = 6.0
KANG_REL_STD = 0.25

#: Mean uplink time per communication channel.
CHANNEL_MEAN_UPLINK = {"wifi": 95.0, "lte": 180.0, "3g": 870.0}

#: Edge speeds per device type.
DEVICE_SPEED = {"gpu": 6.0 / 11.0, "cpu": 6.0 / 37.0}


class Device(enum.Enum):
    """Edge compute device type."""

    GPU = "gpu"
    CPU = "cpu"


class Channel(enum.Enum):
    """Edge communication channel type."""

    WIFI = "wifi"
    LTE = "lte"
    THREE_G = "3g"


@dataclass(frozen=True)
class EdgeUnitType:
    """Device + channel of one edge unit."""

    device: Device
    channel: Channel

    @property
    def speed(self) -> float:
        """Edge compute speed for this device."""
        return DEVICE_SPEED[self.device.value]

    @property
    def mean_uplink(self) -> float:
        """Mean uplink time on this channel."""
        return CHANNEL_MEAN_UPLINK[self.channel.value]


@dataclass(frozen=True)
class KangConfig:
    """Parameters of the Kang-instance generator."""

    n_jobs: int = 100
    n_edge: int = 20
    n_cloud: int = 10
    load: float = DEFAULT_LOAD

    def __post_init__(self) -> None:
        if self.n_jobs < 0 or self.n_edge <= 0 or self.n_cloud < 0:
            raise ModelError(
                f"invalid sizes: n_jobs={self.n_jobs}, n_edge={self.n_edge}, "
                f"n_cloud={self.n_cloud}"
            )
        if self.load <= 0:
            raise ModelError(f"load must be positive, got {self.load}")


def _positive_normal(rng: np.random.Generator, mean: float, std: float, size: int) -> np.ndarray:
    """Normal draws, redrawn while non-positive."""
    out = rng.normal(mean, std, size=size)
    bad = out <= 0
    while bad.any():
        out[bad] = rng.normal(mean, std, size=int(bad.sum()))
        bad = out <= 0
    return out


def draw_edge_types(n_edge: int, rng: np.random.Generator) -> list[EdgeUnitType]:
    """Uniformly sample a (device, channel) pair per edge unit."""
    devices = list(Device)
    channels = list(Channel)
    return [
        EdgeUnitType(devices[int(rng.integers(len(devices)))],
                     channels[int(rng.integers(len(channels)))])
        for _ in range(n_edge)
    ]


def kang_platform(types: list[EdgeUnitType], n_cloud: int) -> Platform:
    """Platform with the given edge unit types and a speed-1 cloud."""
    return Platform.create([t.speed for t in types], n_cloud)


def generate_kang_instance(
    config: KangConfig = KangConfig(),
    *,
    types: list[EdgeUnitType] | None = None,
    seed: SeedLike = None,
) -> Instance:
    """Draw one Kang instance (platform types + jobs) from one seed."""
    rng = as_generator(seed)
    if types is None:
        types = draw_edge_types(config.n_edge, rng)
    elif len(types) != config.n_edge:
        raise ModelError(
            f"got {len(types)} edge types for n_edge={config.n_edge}"
        )
    platform = kang_platform(types, config.n_cloud)

    n = config.n_jobs
    works = _positive_normal(rng, KANG_MEAN_WORK, KANG_MEAN_WORK * KANG_REL_STD, n)
    origins = rng.integers(0, config.n_edge, size=n)
    ups = np.empty(n, dtype=np.float64)
    for i in range(n):
        mean_up = types[int(origins[i])].mean_uplink
        ups[i] = _positive_normal(rng, mean_up, mean_up * KANG_REL_STD, 1)[0]

    horizon = max_release_date(works, platform, config.load)
    releases = rng.uniform(0.0, horizon, size=n)

    jobs = [
        Job(
            origin=int(origins[i]),
            work=float(works[i]),
            release=float(releases[i]),
            up=float(ups[i]),
            dn=0.0,
        )
        for i in range(n)
    ]
    return Instance.create(platform, jobs)
