"""Replay job traces from CSV files.

For users with measured workloads (the paper's motivation names
e-health, disaster recovery, vehicles, drones): a minimal, documented
CSV format and a loader that turns it into an :class:`Instance`.

Format (header required, extra columns ignored)::

    origin,work,release,up,dn
    0,4.0,0.0,1.0,1.0
    1,2.5,3.1,0.5,0.5

``up``/``dn`` default to 0 when the column is absent; rows are sorted
by release so traces need not be pre-sorted.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform

REQUIRED_COLUMNS = ("origin", "work")
OPTIONAL_COLUMNS = ("release", "up", "dn")


def jobs_from_rows(rows: Iterable[dict]) -> list[Job]:
    """Build jobs from dict rows (as produced by ``csv.DictReader``)."""
    jobs = []
    for lineno, row in enumerate(rows, start=2):  # header is line 1
        try:
            job = Job(
                origin=int(row["origin"]),
                work=float(row["work"]),
                release=float(row.get("release") or 0.0),
                up=float(row.get("up") or 0.0),
                dn=float(row.get("dn") or 0.0),
            )
        except KeyError as exc:
            raise ModelError(f"trace line {lineno}: missing column {exc}") from exc
        except ModelError as exc:
            # Job's own validation (negative work, bad comm times, ...):
            # keep the message but pin the offending line.
            raise ModelError(f"trace line {lineno}: {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ModelError(f"trace line {lineno}: {exc}") from exc
        jobs.append(job)
    jobs.sort(key=lambda j: (j.release, j.origin))
    return jobs


def load_trace(path: str | Path, platform: Platform) -> Instance:
    """Load a CSV trace into an instance on ``platform``."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ModelError(f"{path}: empty trace file")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise ModelError(f"{path}: missing required column(s) {missing}")
        jobs = jobs_from_rows(reader)
    return Instance.create(platform, jobs)


def save_trace(instance: Instance, path: str | Path) -> None:
    """Write an instance's jobs as a CSV trace (inverse of load_trace)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["origin", "work", "release", "up", "dn"])
        for job in instance.jobs:
            writer.writerow([job.origin, job.work, job.release, job.up, job.dn])
