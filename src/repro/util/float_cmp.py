"""Tolerant floating-point comparisons.

The simulation advances continuous time with floats; activity remainders
are decremented by ``rate * dt`` and must compare equal to zero at the
event that completes them.  All such comparisons go through this module
so the tolerance policy lives in exactly one place.

The tolerance is a combination of an absolute floor (for quantities that
should be exactly zero) and a relative term (for comparing two times that
may both be large).
"""

from __future__ import annotations

import math

#: Absolute tolerance used when one of the operands is (near) zero.
DEFAULT_ABS_TOL: float = 1e-9

#: Relative tolerance for comparing two times/amounts of similar scale.
DEFAULT_REL_TOL: float = 1e-9


def feq(a: float, b: float, *, rel: float = DEFAULT_REL_TOL, abs_: float = DEFAULT_ABS_TOL) -> bool:
    """Return True when ``a`` and ``b`` are equal up to tolerance."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)


def fle(a: float, b: float, *, rel: float = DEFAULT_REL_TOL, abs_: float = DEFAULT_ABS_TOL) -> bool:
    """Tolerant ``a <= b``."""
    return a <= b or feq(a, b, rel=rel, abs_=abs_)


def fge(a: float, b: float, *, rel: float = DEFAULT_REL_TOL, abs_: float = DEFAULT_ABS_TOL) -> bool:
    """Tolerant ``a >= b``."""
    return a >= b or feq(a, b, rel=rel, abs_=abs_)


def flt(a: float, b: float, *, rel: float = DEFAULT_REL_TOL, abs_: float = DEFAULT_ABS_TOL) -> bool:
    """Tolerant strict ``a < b`` (False when equal within tolerance)."""
    return a < b and not feq(a, b, rel=rel, abs_=abs_)


def fgt(a: float, b: float, *, rel: float = DEFAULT_REL_TOL, abs_: float = DEFAULT_ABS_TOL) -> bool:
    """Tolerant strict ``a > b`` (False when equal within tolerance)."""
    return a > b and not feq(a, b, rel=rel, abs_=abs_)


def is_zero(a: float, *, abs_: float = DEFAULT_ABS_TOL) -> bool:
    """Return True when ``a`` is zero up to the absolute tolerance."""
    return abs(a) <= abs_


def clamp_nonnegative(a: float, *, abs_: float = DEFAULT_ABS_TOL) -> float:
    """Clamp a slightly-negative rounding residue to exactly 0.

    Raises ``ValueError`` if ``a`` is negative beyond tolerance, which
    indicates a logic error rather than a rounding artifact.
    """
    if a >= 0.0:
        return a
    if a >= -abs_:
        return 0.0
    raise ValueError(f"expected a non-negative quantity, got {a!r}")
