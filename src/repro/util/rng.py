"""Randomness plumbing.

All stochastic code in this package takes a ``numpy.random.Generator``
(or anything :func:`as_generator` accepts) explicitly.  Experiments spawn
one independent child generator per replication from a single root seed,
so that every data point is reproducible and replications are
statistically independent.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned as is).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def _root_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Root ``SeedSequence`` used for spawning children from ``seed``."""
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own bit stream.
        return np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_generators(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(child) for child in _root_sequence(seed).spawn(n)]


def spawn_generator(seed: SeedLike, index: int) -> np.random.Generator:
    """Derive only the ``index``-th child of :func:`spawn_generators`.

    ``SeedSequence.spawn`` gives child ``i`` the spawn key
    ``parent.spawn_key + (i,)``; building that child directly yields a
    bit-identical stream in O(1), without materializing the other
    children — this is what lets an experiment cell re-derive just its
    own stream instead of all ``n_points * n_reps`` of them.
    """
    if index < 0:
        raise ValueError(f"spawn index must be non-negative, got {index}")
    root = _root_sequence(seed)
    child = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (index,),
        pool_size=root.pool_size,
    )
    return np.random.default_rng(child)
