"""Randomness plumbing.

All stochastic code in this package takes a ``numpy.random.Generator``
(or anything :func:`as_generator` accepts) explicitly.  Experiments spawn
one independent child generator per replication from a single root seed,
so that every data point is reproducible and replications are
statistically independent.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned as is).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own bit stream.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]
