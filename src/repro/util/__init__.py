"""Small shared utilities: float comparison, binary search, RNG plumbing."""

from repro.util.float_cmp import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    feq,
    fge,
    fgt,
    fle,
    flt,
    is_zero,
)
from repro.util.rng import as_generator, spawn_generators
from repro.util.search import binary_search_min

__all__ = [
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
    "feq",
    "fge",
    "fgt",
    "fle",
    "flt",
    "is_zero",
    "as_generator",
    "spawn_generators",
    "binary_search_min",
]
