"""Generic numeric binary search used by the stretch-so-far algorithms.

Both the Bender offline single-machine optimum and the online SSF-EDF
heuristic search for the smallest target stretch for which a feasibility
predicate holds.  Feasibility is monotone in the target (a larger stretch
only relaxes the deadlines), so a plain bisection to relative precision
``eps`` suffices — this is exactly the ``log(1/eps)`` factor of the
paper's SSF-EDF complexity analysis.
"""

from __future__ import annotations

from typing import Callable


def binary_search_min(
    feasible: Callable[[float], bool],
    lo: float,
    hi: float,
    *,
    eps: float = 1e-6,
    grow_factor: float = 2.0,
    max_grow: int = 200,
    hint: float | None = None,
) -> float:
    """Return (approximately) the least ``x`` in ``[lo, hi*...]`` with ``feasible(x)``.

    ``feasible`` must be monotone: once true it stays true for larger
    arguments.  If ``feasible(hi)`` is false, ``hi`` is grown
    geometrically (up to ``max_grow`` doublings) until it holds.

    ``hint``, when given and greater than ``lo``, replaces the initial
    ``hi``: a caller that solved a nearby problem before (SSF-EDF's
    previous release) can seed the bracket with its last result and
    skip most of the geometric growth phase.  An under-estimating hint
    is safe — the growth loop takes over as usual.

    The search stops when the bracket's relative width drops below
    ``eps`` and returns the *feasible* end of the bracket, so the result
    is always a feasible target.
    """
    if lo < 0:
        raise ValueError(f"binary_search_min requires lo >= 0, got {lo}")
    if hi < lo:
        raise ValueError(f"binary_search_min requires hi >= lo, got lo={lo}, hi={hi}")
    if eps <= 0:
        raise ValueError(f"binary_search_min requires eps > 0, got {eps}")

    if hint is not None and hint > lo:
        hi = hint

    if feasible(lo):
        return lo

    grows = 0
    while not feasible(hi):
        grows += 1
        if grows > max_grow:
            raise RuntimeError(
                f"binary_search_min: no feasible point found up to {hi!r}; "
                "the predicate may not be monotone or the problem is infeasible"
            )
        lo = hi
        hi = max(hi * grow_factor, 1.0)

    # Invariant: feasible(hi) and not feasible(lo).
    while (hi - lo) > eps * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi
