"""Deterministic fault injection (unplanned crashes and link outages).

See :mod:`repro.faults.trace` for the fault model and
:mod:`repro.faults.model` for the seeded MTBF/MTTR generator;
``docs/FAULTS.md`` documents the semantics end to end.
"""

from repro.faults.model import (
    FaultClassParams,
    FaultGroup,
    exponential_fault_trace,
    parse_fault_groups,
)
from repro.faults.trace import (
    DOMAIN_CLOUD,
    DOMAIN_EDGE,
    DOMAIN_LINK,
    FaultRates,
    FaultTrace,
    FaultTransition,
    RenewalRates,
)

__all__ = [
    "DOMAIN_CLOUD",
    "DOMAIN_EDGE",
    "DOMAIN_LINK",
    "FaultClassParams",
    "FaultGroup",
    "FaultRates",
    "FaultTrace",
    "FaultTransition",
    "RenewalRates",
    "exponential_fault_trace",
    "parse_fault_groups",
]
