"""Seeded stochastic fault models (MTBF/MTTR exponential renewal).

The classic reliability model: each resource alternates exponentially
distributed up-times (mean **MTBF**) and down-times (mean **MTTR**),
independently per resource.  Draw order is fixed — edge units in index
order, then cloud processors, then links, alternating (uptime, downtime)
within a resource — so a trace is a pure function of the seed and the
parameters, and the same trace is drawn in a serial run and in any pool
worker (byte-identical results, like everything else derived from
``repro.util.rng``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.faults.trace import FaultTrace
from repro.util.rng import SeedLike, as_generator

#: Down intervals shorter than this are discarded (zero-length intervals
#: are invalid, and sub-tolerance outages cannot affect the simulation).
_MIN_DOWN = 1e-9


@dataclass(frozen=True)
class FaultClassParams:
    """MTBF/MTTR of one fault class (edge, cloud, or link)."""

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ModelError(f"mtbf must be positive, got {self.mtbf}")
        if not self.mttr > 0:
            raise ModelError(f"mttr must be positive, got {self.mttr}")


def _draw_windows(
    rng: np.random.Generator, params: FaultClassParams, horizon: float
) -> tuple[Interval, ...]:
    """Alternating Exp(MTBF) up / Exp(MTTR) down renewal, clipped at horizon."""
    ivs: list[Interval] = []
    t = 0.0
    while True:
        t += float(rng.exponential(params.mtbf))
        if t >= horizon:
            break
        d = float(rng.exponential(params.mttr))
        end = min(t + d, horizon)
        if end - t > _MIN_DOWN:
            ivs.append(Interval(t, end))
        t = end
    return tuple(ivs)


def exponential_fault_trace(
    *,
    n_edge: int,
    n_cloud: int,
    horizon: float,
    seed: SeedLike = None,
    edge: FaultClassParams | None = None,
    cloud: FaultClassParams | None = None,
    link: FaultClassParams | None = None,
) -> FaultTrace:
    """Draw a :class:`FaultTrace` from the exponential MTBF/MTTR model.

    ``edge`` / ``cloud`` / ``link`` give the per-class parameters; a
    ``None`` class never fails.  ``horizon`` bounds the trace — pick it
    generously above the expected makespan; boundaries past the actual
    makespan simply never fire.
    """
    if n_edge < 0 or n_cloud < 0:
        raise ModelError(f"negative platform sizes: n_edge={n_edge}, n_cloud={n_cloud}")
    if not horizon > 0:
        raise ModelError(f"horizon must be positive, got {horizon}")
    rng = as_generator(seed)
    edge_down: dict[int, tuple[Interval, ...]] = {}
    cloud_down: dict[int, tuple[Interval, ...]] = {}
    link_down: dict[int, tuple[Interval, ...]] = {}
    if edge is not None:
        for j in range(n_edge):
            ivs = _draw_windows(rng, edge, horizon)
            if ivs:
                edge_down[j] = ivs
    if cloud is not None:
        for k in range(n_cloud):
            ivs = _draw_windows(rng, cloud, horizon)
            if ivs:
                cloud_down[k] = ivs
    if link is not None:
        for o in range(n_edge):
            ivs = _draw_windows(rng, link, horizon)
            if ivs:
                link_down[o] = ivs
    return FaultTrace(edge_down, cloud_down, link_down)
