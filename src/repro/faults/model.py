"""Seeded stochastic fault models (MTBF/MTTR exponential renewal).

The classic reliability model: each resource alternates exponentially
distributed up-times (mean **MTBF**) and down-times (mean **MTTR**),
independently per resource.  Draw order is fixed — edge units in index
order, then cloud processors, then links, alternating (uptime, downtime)
within a resource — so a trace is a pure function of the seed and the
parameters, and the same trace is drawn in a serial run and in any pool
worker (byte-identical results, like everything else derived from
``repro.util.rng``).

``group_size > 1`` switches a class to *correlated* failures: resources
are partitioned into consecutive index groups (shared racks / power
domains) and one renewal sequence is drawn per group, shared by every
member — group members crash and recover together.  ``group_size=1``
reproduces the independent model draw for draw.

``groups`` generalizes this to *topology-driven* correlation: arbitrary
(and possibly overlapping) membership lists per domain, e.g. the edge
units of one rack plus the links of one aggregation switch.  One
renewal sequence is drawn per listed group (in listed order, within the
fixed edge → cloud → link domain order); resources in several groups
take the union of their groups' down windows, merged to sorted disjoint
intervals; resources of a faulty domain not covered by any group keep
their independent per-resource draw.  ``parse_fault_groups`` parses the
CLI spec syntax (``"edge:0,1;link:0-2"``).

Generated traces carry their parameters as
:class:`~repro.faults.trace.FaultRates` metadata, which is what
failure-aware schedulers (and the capacity layer,
:mod:`repro.capacity`) discount expected capacity from — the model, not
the realization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.faults.trace import (
    DOMAIN_CLOUD,
    DOMAIN_EDGE,
    DOMAIN_LINK,
    FaultRates,
    FaultTrace,
    RenewalRates,
)
from repro.util.rng import SeedLike, as_generator

#: One correlated fault group: a domain name ("edge" / "cloud" / "link")
#: and the member resource indices sharing a renewal sequence.
FaultGroup = tuple[str, tuple[int, ...]]

#: Down intervals shorter than this are discarded (zero-length intervals
#: are invalid, and sub-tolerance outages cannot affect the simulation).
_MIN_DOWN = 1e-9


@dataclass(frozen=True)
class FaultClassParams:
    """MTBF/MTTR of one fault class (edge, cloud, or link)."""

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ModelError(f"mtbf must be positive, got {self.mtbf}")
        if not self.mttr > 0:
            raise ModelError(f"mttr must be positive, got {self.mttr}")


def _draw_windows(
    rng: np.random.Generator, params: FaultClassParams, horizon: float
) -> tuple[Interval, ...]:
    """Alternating Exp(MTBF) up / Exp(MTTR) down renewal, clipped at horizon."""
    ivs: list[Interval] = []
    t = 0.0
    while True:
        t += float(rng.exponential(params.mtbf))
        if t >= horizon:
            break
        d = float(rng.exponential(params.mttr))
        end = min(t + d, horizon)
        if end - t > _MIN_DOWN:
            ivs.append(Interval(t, end))
        t = end
    return tuple(ivs)


def _draw_class(
    rng: np.random.Generator,
    params: FaultClassParams | None,
    n: int,
    horizon: float,
    group_size: int,
) -> dict[int, tuple[Interval, ...]]:
    """Per-resource windows of one class; groups share one renewal draw."""
    windows: dict[int, tuple[Interval, ...]] = {}
    if params is None:
        return windows
    for base in range(0, n, group_size):
        ivs = _draw_windows(rng, params, horizon)
        if ivs:
            for idx in range(base, min(base + group_size, n)):
                windows[idx] = ivs
    return windows


def _merge_windows(seqs: list[tuple[Interval, ...]]) -> tuple[Interval, ...]:
    """Union of several sorted window sequences, as sorted disjoint intervals.

    Resources belonging to several (overlapping) fault groups are down
    whenever *any* of their groups is down; :class:`FaultTrace` requires
    strictly disjoint windows per resource, so the union is coalesced.
    """
    merged: list[Interval] = []
    for iv in sorted(iv for seq in seqs for iv in seq):
        if merged and iv.start <= merged[-1].end:
            if iv.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, iv.end)
        else:
            merged.append(iv)
    return tuple(merged)


def _draw_class_grouped(
    rng: np.random.Generator,
    params: FaultClassParams | None,
    n: int,
    horizon: float,
    domain_groups: list[tuple[int, ...]],
) -> dict[int, tuple[Interval, ...]]:
    """Per-resource windows of one class under topology-driven groups.

    One renewal sequence per group, in listed order; overlapping
    memberships union; uncovered resources keep independent draws (in
    index order, after the group draws).
    """
    windows: dict[int, tuple[Interval, ...]] = {}
    if params is None:
        return windows
    per_resource: dict[int, list[tuple[Interval, ...]]] = {}
    covered: set[int] = set()
    for members in domain_groups:
        ivs = _draw_windows(rng, params, horizon)
        covered.update(members)
        if ivs:
            for idx in members:
                per_resource.setdefault(idx, []).append(ivs)
    for idx in sorted(per_resource):
        merged = _merge_windows(per_resource[idx])
        if merged:
            windows[idx] = merged
    for idx in range(n):
        if idx in covered:
            continue
        ivs = _draw_windows(rng, params, horizon)
        if ivs:
            windows[idx] = ivs
    return windows


def _validate_groups(
    groups: Sequence[tuple[str, Sequence[int]]], n_edge: int, n_cloud: int
) -> dict[str, list[tuple[int, ...]]]:
    """Check domains/indices and split the group list by domain."""
    limits = {DOMAIN_EDGE: n_edge, DOMAIN_CLOUD: n_cloud, DOMAIN_LINK: n_edge}
    by_domain: dict[str, list[tuple[int, ...]]] = {d: [] for d in limits}
    for pos, (domain, members) in enumerate(groups):
        if domain not in limits:
            raise ModelError(
                f"fault group {pos} has unknown domain {domain!r}; "
                f"expected one of {sorted(limits)}"
            )
        members = tuple(int(m) for m in members)
        if not members:
            raise ModelError(f"fault group {pos} ({domain}) has no members")
        if len(set(members)) != len(members):
            raise ModelError(f"fault group {pos} ({domain}) has duplicate members: {members}")
        limit = limits[domain]
        for m in members:
            if not 0 <= m < limit:
                raise ModelError(
                    f"fault group {pos} ({domain}) member {m} out of range "
                    f"[0, {limit})"
                )
        by_domain[domain].append(members)
    return by_domain


def parse_fault_groups(spec: str) -> tuple[FaultGroup, ...]:
    """Parse the CLI fault-group syntax into ``(domain, members)`` tuples.

    ``spec`` is ``;``-separated groups, each ``domain:members`` where
    members are comma-separated indices or ``a-b`` inclusive ranges:
    ``"edge:0,1;link:0-2;cloud:1"``.  Domains may repeat (one group per
    entry) and memberships may overlap across groups.
    """
    out: list[FaultGroup] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        domain, sep, body = chunk.partition(":")
        domain = domain.strip()
        if not sep or not body.strip():
            raise ModelError(
                f"bad fault group {chunk!r}; expected 'domain:i,j,a-b' "
                "(e.g. 'edge:0,1;link:0-2')"
            )
        members: list[int] = []
        for item in body.split(","):
            item = item.strip()
            if not item:
                continue
            lo, dash, hi = item.partition("-")
            try:
                if dash:
                    a, b = int(lo), int(hi)
                    if b < a:
                        raise ValueError
                    members.extend(range(a, b + 1))
                else:
                    members.append(int(item))
            except ValueError:
                raise ModelError(
                    f"bad fault group member {item!r} in {chunk!r}; "
                    "expected an index or an 'a-b' range"
                ) from None
        if not members:
            raise ModelError(f"fault group {chunk!r} has no members")
        out.append((domain, tuple(members)))
    if not out:
        raise ModelError(f"no fault groups in spec {spec!r}")
    return tuple(out)


def exponential_fault_trace(
    *,
    n_edge: int,
    n_cloud: int,
    horizon: float,
    seed: SeedLike = None,
    edge: FaultClassParams | None = None,
    cloud: FaultClassParams | None = None,
    link: FaultClassParams | None = None,
    group_size: int = 1,
    groups: Sequence[tuple[str, Sequence[int]]] | None = None,
) -> FaultTrace:
    """Draw a :class:`FaultTrace` from the exponential MTBF/MTTR model.

    ``edge`` / ``cloud`` / ``link`` give the per-class parameters; a
    ``None`` class never fails.  ``horizon`` bounds the trace — pick it
    generously above the expected makespan; boundaries past the actual
    makespan simply never fire.  ``group_size`` sets the correlation
    granularity: consecutive index groups of that size share one renewal
    sequence per class (they fail and recover together); the default 1
    keeps every resource independent.  ``groups`` instead names
    arbitrary (possibly overlapping) correlated groups per domain — see
    the module docstring; it is mutually exclusive with
    ``group_size > 1``, and ``groups=None`` reproduces the historical
    stream draw for draw.  The returned trace carries its parameters as
    :class:`~repro.faults.trace.FaultRates` metadata.
    """
    if n_edge < 0 or n_cloud < 0:
        raise ModelError(f"negative platform sizes: n_edge={n_edge}, n_cloud={n_cloud}")
    if not horizon > 0:
        raise ModelError(f"horizon must be positive, got {horizon}")
    if group_size < 1:
        raise ModelError(f"group_size must be >= 1, got {group_size}")
    if groups is not None and group_size != 1:
        raise ModelError("groups and group_size > 1 are mutually exclusive")
    rng = as_generator(seed)
    if groups is not None:
        by_domain = _validate_groups(groups, n_edge, n_cloud)
        edge_down = _draw_class_grouped(rng, edge, n_edge, horizon, by_domain[DOMAIN_EDGE])
        cloud_down = _draw_class_grouped(rng, cloud, n_cloud, horizon, by_domain[DOMAIN_CLOUD])
        link_down = _draw_class_grouped(rng, link, n_edge, horizon, by_domain[DOMAIN_LINK])
    else:
        edge_down = _draw_class(rng, edge, n_edge, horizon, group_size)
        cloud_down = _draw_class(rng, cloud, n_cloud, horizon, group_size)
        link_down = _draw_class(rng, link, n_edge, horizon, group_size)
    rates = FaultRates(
        edge=None if edge is None else RenewalRates(edge.mtbf, edge.mttr),
        cloud=None if cloud is None else RenewalRates(cloud.mtbf, cloud.mttr),
        link=None if link is None else RenewalRates(link.mtbf, link.mttr),
    )
    return FaultTrace(edge_down, cloud_down, link_down, rates=rates)
