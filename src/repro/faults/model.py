"""Seeded stochastic fault models (MTBF/MTTR exponential renewal).

The classic reliability model: each resource alternates exponentially
distributed up-times (mean **MTBF**) and down-times (mean **MTTR**),
independently per resource.  Draw order is fixed — edge units in index
order, then cloud processors, then links, alternating (uptime, downtime)
within a resource — so a trace is a pure function of the seed and the
parameters, and the same trace is drawn in a serial run and in any pool
worker (byte-identical results, like everything else derived from
``repro.util.rng``).

``group_size > 1`` switches a class to *correlated* failures: resources
are partitioned into consecutive index groups (shared racks / power
domains) and one renewal sequence is drawn per group, shared by every
member — group members crash and recover together.  ``group_size=1``
reproduces the independent model draw for draw.

Generated traces carry their parameters as
:class:`~repro.faults.trace.FaultRates` metadata, which is what
failure-aware schedulers (and the capacity layer,
:mod:`repro.capacity`) discount expected capacity from — the model, not
the realization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.intervals import Interval
from repro.faults.trace import FaultRates, FaultTrace, RenewalRates
from repro.util.rng import SeedLike, as_generator

#: Down intervals shorter than this are discarded (zero-length intervals
#: are invalid, and sub-tolerance outages cannot affect the simulation).
_MIN_DOWN = 1e-9


@dataclass(frozen=True)
class FaultClassParams:
    """MTBF/MTTR of one fault class (edge, cloud, or link)."""

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ModelError(f"mtbf must be positive, got {self.mtbf}")
        if not self.mttr > 0:
            raise ModelError(f"mttr must be positive, got {self.mttr}")


def _draw_windows(
    rng: np.random.Generator, params: FaultClassParams, horizon: float
) -> tuple[Interval, ...]:
    """Alternating Exp(MTBF) up / Exp(MTTR) down renewal, clipped at horizon."""
    ivs: list[Interval] = []
    t = 0.0
    while True:
        t += float(rng.exponential(params.mtbf))
        if t >= horizon:
            break
        d = float(rng.exponential(params.mttr))
        end = min(t + d, horizon)
        if end - t > _MIN_DOWN:
            ivs.append(Interval(t, end))
        t = end
    return tuple(ivs)


def _draw_class(
    rng: np.random.Generator,
    params: FaultClassParams | None,
    n: int,
    horizon: float,
    group_size: int,
) -> dict[int, tuple[Interval, ...]]:
    """Per-resource windows of one class; groups share one renewal draw."""
    windows: dict[int, tuple[Interval, ...]] = {}
    if params is None:
        return windows
    for base in range(0, n, group_size):
        ivs = _draw_windows(rng, params, horizon)
        if ivs:
            for idx in range(base, min(base + group_size, n)):
                windows[idx] = ivs
    return windows


def exponential_fault_trace(
    *,
    n_edge: int,
    n_cloud: int,
    horizon: float,
    seed: SeedLike = None,
    edge: FaultClassParams | None = None,
    cloud: FaultClassParams | None = None,
    link: FaultClassParams | None = None,
    group_size: int = 1,
) -> FaultTrace:
    """Draw a :class:`FaultTrace` from the exponential MTBF/MTTR model.

    ``edge`` / ``cloud`` / ``link`` give the per-class parameters; a
    ``None`` class never fails.  ``horizon`` bounds the trace — pick it
    generously above the expected makespan; boundaries past the actual
    makespan simply never fire.  ``group_size`` sets the correlation
    granularity: consecutive index groups of that size share one renewal
    sequence per class (they fail and recover together); the default 1
    keeps every resource independent.  The returned trace carries its
    parameters as :class:`~repro.faults.trace.FaultRates` metadata.
    """
    if n_edge < 0 or n_cloud < 0:
        raise ModelError(f"negative platform sizes: n_edge={n_edge}, n_cloud={n_cloud}")
    if not horizon > 0:
        raise ModelError(f"horizon must be positive, got {horizon}")
    if group_size < 1:
        raise ModelError(f"group_size must be >= 1, got {group_size}")
    rng = as_generator(seed)
    edge_down = _draw_class(rng, edge, n_edge, horizon, group_size)
    cloud_down = _draw_class(rng, cloud, n_cloud, horizon, group_size)
    link_down = _draw_class(rng, link, n_edge, horizon, group_size)
    rates = FaultRates(
        edge=None if edge is None else RenewalRates(edge.mtbf, edge.mttr),
        cloud=None if cloud is None else RenewalRates(cloud.mtbf, cloud.mttr),
        link=None if link is None else RenewalRates(link.mtbf, link.mttr),
    )
    return FaultTrace(edge_down, cloud_down, link_down, rates=rates)
