"""Observed-rate estimation for rateless fault traces.

Generated traces (:mod:`repro.faults.model`) carry the model parameters
they were drawn from as :class:`~repro.faults.trace.FaultRates`
metadata, and the Young/Daly ``auto`` checkpoint interval resolves
against those.  A trace that arrived *without* rates — replayed from a
production log, hand-built in a test, parsed from an external file —
used to silently disable the periodic rule.  This module closes the
gap: it reads the failure stream the trace already contains and
estimates per-domain MTBF/MTTR as plain renewal-process sample means,

* **MTTR** — mean down-interval length over every resource of the
  domain, and
* **MTBF** — mean up-gap length, where each resource contributes the
  gaps between its consecutive down intervals plus the leading gap from
  time 0 to its first failure (resources that never fail contribute
  nothing: their observation window is unknown, and counting them would
  require a horizon the trace does not store).

This is an *a-posteriori* estimate of the same quantities the
generators record a-priori — on a generated exponential trace it
converges to the model parameters as the trace grows.  It deliberately
reuses only information the platform would genuinely possess (observed
failures), never the trace's future boundaries: discounting and
Young/Daly sizing stay non-clairvoyant exactly as with model-provided
rates.
"""

from __future__ import annotations

from typing import Mapping

from repro.faults.trace import FaultRates, FaultTrace, Interval, RenewalRates


def _domain_rates(windows: Mapping[int, tuple[Interval, ...]]) -> RenewalRates | None:
    """Sample-mean MTBF/MTTR of one domain's down-window mapping.

    None when the domain carries no failures, or when the sample means
    are degenerate (zero-length downs or gaps only —
    :class:`RenewalRates` requires positive parameters).
    """
    downs: list[float] = []
    gaps: list[float] = []
    for ivs in windows.values():
        prev_end = 0.0
        for iv in ivs:
            downs.append(iv.end - iv.start)
            gaps.append(iv.start - prev_end)
            prev_end = iv.end
    if not downs:
        return None
    mtbf = sum(gaps) / len(gaps)
    mttr = sum(downs) / len(downs)
    if mtbf <= 0.0 or mttr <= 0.0:
        return None
    return RenewalRates(mtbf=mtbf, mttr=mttr)


def observed_rates(trace: FaultTrace) -> FaultRates | None:
    """Estimate :class:`FaultRates` from the failures ``trace`` records.

    Each of the three domains (edge, cloud, link) gets independent
    sample-mean MTBF/MTTR estimates; a domain with no recorded failure
    stays None (it never fails, exactly as model metadata would say).
    Returns None when the trace is empty or degenerate — the caller
    falls back to whatever no-rates behavior it already had.
    """
    edge = _domain_rates(trace.edge_down)
    cloud = _domain_rates(trace.cloud_down)
    link = _domain_rates(trace.link_down)
    if edge is None and cloud is None and link is None:
        return None
    return FaultRates(edge=edge, cloud=cloud, link=link)
