"""Deterministic fault traces: unplanned crashes and link outages.

Where :class:`repro.sim.availability.CloudAvailability` models *planned*
co-tenancy (§VII: cloud compute cycles stolen, network untouched), a
:class:`FaultTrace` models *unplanned* failures:

* **edge crashes** — edge unit ``j`` is dead during each interval of
  ``edge_down[j]``: its compute slot and both communication ports are
  unusable, and any attempt allocated to it (plus any in-flight
  transfer of a job originating at ``j``) is aborted, its progress
  lost;
* **cloud crashes** — cloud processor ``k`` is dead during
  ``cloud_down[k]``: compute and ports unusable, and every attempt
  allocated to ``k`` is aborted regardless of phase (data staged on
  the processor is lost with it);
* **link outages** — the access link of edge unit ``o`` is down during
  ``link_down[o]``: only the unit's send/receive ports are unusable.
  In-flight up/downlinks of jobs originating at ``o`` are aborted;
  a job computing on the cloud keeps its attempt and simply waits for
  the link to return before its downlink can start.

Recovery is the model's own re-execution rule: an aborted job goes back
to pending and the scheduler re-decides at the fault boundary — exactly
what a re-assignment to a different resource already does, so faults
add no new mechanism to the model, only new *events*.

The trace is immutable and queried by absolute simulation time, so the
same trace replayed against the same instance and scheduler gives
byte-identical results in any process (serial or pool worker).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.errors import ModelError
from repro.core.intervals import Interval

#: Fault domains, in the deterministic processing order used at a
#: simultaneous boundary.
DOMAIN_EDGE = "edge"
DOMAIN_CLOUD = "cloud"
DOMAIN_LINK = "link"

_DOMAINS = (DOMAIN_EDGE, DOMAIN_CLOUD, DOMAIN_LINK)


@dataclass(frozen=True)
class FaultTransition:
    """One resource going down or coming back up at a boundary."""

    domain: str  # DOMAIN_EDGE | DOMAIN_CLOUD | DOMAIN_LINK
    index: int
    goes_down: bool


@dataclass(frozen=True)
class RenewalRates:
    """MTBF/MTTR of one resource class of a renewal fault model."""

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ModelError(f"mtbf must be positive, got {self.mtbf}")
        if not self.mttr > 0:
            raise ModelError(f"mttr must be positive, got {self.mttr}")

    @property
    def availability(self) -> float:
        """Steady-state available fraction, ``mtbf / (mtbf + mttr)``."""
        return self.mtbf / (self.mtbf + self.mttr)


@dataclass(frozen=True)
class FaultRates:
    """The model parameters a generated trace was drawn from.

    Optional metadata attached to a :class:`FaultTrace` by the seeded
    generators (:mod:`repro.faults.model`).  Failure-aware schedulers
    discount capacity from these *parameters* — never from the trace's
    future boundaries, which would be clairvoyant.  A ``None`` class
    never fails.
    """

    edge: RenewalRates | None = None
    cloud: RenewalRates | None = None
    link: RenewalRates | None = None

    def for_domain(self, domain: str) -> RenewalRates | None:
        """The rates of ``domain`` (one of the ``DOMAIN_*`` constants)."""
        if domain == DOMAIN_EDGE:
            return self.edge
        if domain == DOMAIN_CLOUD:
            return self.cloud
        if domain == DOMAIN_LINK:
            return self.link
        raise ModelError(f"unknown fault domain {domain!r}")


def _check_windows(label: str, windows: Mapping[int, tuple[Interval, ...]]) -> None:
    for idx, ivs in windows.items():
        if idx < 0:
            raise ModelError(f"{label} index must be non-negative, got {idx}")
        if not ivs:
            raise ModelError(f"{label}[{idx}] has an empty interval tuple; omit the key")
        for a, b in zip(ivs, ivs[1:]):
            if b.start < a.end:
                raise ModelError(
                    f"down intervals of {label}[{idx}] must be sorted and disjoint: "
                    f"{a} then {b}"
                )


def _is_down(ivs: tuple[Interval, ...], t: float) -> bool:
    if not ivs:
        return False
    pos = bisect_right(ivs, t, key=lambda iv: iv.start) - 1
    return pos >= 0 and ivs[pos].contains_time(t)


@dataclass(frozen=True)
class FaultTrace:
    """Per-resource crash/outage intervals, queried by absolute time.

    ``edge_down[j]`` / ``cloud_down[k]`` / ``link_down[o]`` are sorted
    tuples of disjoint half-open :class:`Interval`\\ s during which the
    resource is down.  Resources without an entry never fail.  The
    trace is validated at construction and immutable afterwards.
    """

    edge_down: Mapping[int, tuple[Interval, ...]] = field(default_factory=dict)
    cloud_down: Mapping[int, tuple[Interval, ...]] = field(default_factory=dict)
    link_down: Mapping[int, tuple[Interval, ...]] = field(default_factory=dict)
    #: Model parameters behind the trace (seeded generators attach them);
    #: None for hand-built traces.  Not part of the trace's identity.
    rates: FaultRates | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        _check_windows("edge", self.edge_down)
        _check_windows("cloud", self.cloud_down)
        _check_windows("link", self.link_down)
        boundaries: list[float] = []
        transitions: dict[float, list[FaultTransition]] = {}
        for domain, mapping in zip(_DOMAINS, (self.edge_down, self.cloud_down, self.link_down)):
            for idx in sorted(mapping):
                for iv in mapping[idx]:
                    for t, goes_down in ((iv.start, True), (iv.end, False)):
                        if t not in transitions:
                            transitions[t] = []
                            boundaries.append(t)
                        transitions[t].append(FaultTransition(domain, idx, goes_down))
        boundaries.sort()
        # Down-transitions first at a simultaneous boundary, then by
        # domain (edge, cloud, link) and index — a fixed order so abort
        # processing and event emission are deterministic.
        rank = {d: r for r, d in enumerate(_DOMAINS)}
        for t in boundaries:
            transitions[t].sort(key=lambda tr: (not tr.goes_down, rank[tr.domain], tr.index))
        object.__setattr__(self, "_boundaries", boundaries)
        object.__setattr__(self, "_transitions", transitions)
        # Per-resource sorted interval-start lists and sorted index
        # lists: the down-state bisects run on plain float lists (no
        # per-probe key callable) and the composed down_at sweep skips
        # re-sorting the mappings on every query.
        object.__setattr__(
            self,
            "_starts",
            tuple(
                {idx: [iv.start for iv in mapping[idx]] for idx in mapping}
                for mapping in (self.edge_down, self.cloud_down, self.link_down)
            ),
        )
        object.__setattr__(
            self,
            "_sorted_idx",
            tuple(
                sorted(mapping)
                for mapping in (self.edge_down, self.cloud_down, self.link_down)
            ),
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultTrace":
        """A trace with no faults at all (the paper's base model)."""
        return cls({}, {}, {})

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the trace contains no fault interval of any kind."""
        return not self._boundaries

    @property
    def n_boundaries(self) -> int:
        """Number of distinct fault boundary instants."""
        return len(self._boundaries)

    def _down_fast(self, d: int, idx: int, t: float) -> bool:
        """Down-state probe on the precomputed start lists (d: domain rank)."""
        starts = self._starts[d].get(idx)
        if starts is None:
            return False
        pos = bisect_right(starts, t) - 1
        if pos < 0:
            return False
        mapping = (self.edge_down, self.cloud_down, self.link_down)[d]
        return mapping[idx][pos].contains_time(t)

    def edge_up(self, j: int, t: float) -> bool:
        """True when edge unit ``j`` is alive at time ``t``."""
        return not self._down_fast(0, j, t)

    def cloud_up(self, k: int, t: float) -> bool:
        """True when cloud processor ``k`` is alive at time ``t``."""
        return not self._down_fast(1, k, t)

    def link_up(self, o: int, t: float) -> bool:
        """True when the access link of edge unit ``o`` is up at ``t``."""
        return not self._down_fast(2, o, t)

    def next_boundary(self, t: float) -> float:
        """Earliest fault boundary strictly after ``t`` (inf if none)."""
        b = self._boundaries
        pos = bisect_right(b, t)
        return b[pos] if pos < len(b) else float("inf")

    def interval_key(self, t: float) -> int:
        """Index of the constancy interval of ``t``.

        The trace's down-state is piecewise constant between boundaries,
        and down intervals are half-open, so :meth:`down_at` returns the
        same sets for any two instants with equal keys.  Consumers (the
        capacity outlook's delta cache, the engine's incremental
        activation) use key equality as the exact "nothing changed"
        predicate instead of re-deriving the down-state.
        """
        return bisect_right(self._boundaries, t)

    def transitions_at(self, boundary: float) -> tuple[FaultTransition, ...]:
        """The transitions at an exact boundary instant (may be empty)."""
        return tuple(self._transitions.get(boundary, ()))

    def down_at(self, t: float) -> tuple[list[int], list[int], list[int]]:
        """Indices of (edge units, cloud processors, links) down at ``t``.

        Each list is ascending; used by the engine to block the ledger
        at the start of an activation round.
        """
        ei, ci, li = self._sorted_idx
        edges = [j for j in ei if self._down_fast(0, j, t)]
        clouds = [k for k in ci if self._down_fast(1, k, t)]
        links = [o for o in li if self._down_fast(2, o, t)]
        return edges, clouds, links

    def iter_down_intervals(self) -> Iterator[tuple[str, int, Interval]]:
        """Yield every (domain, index, interval) of the trace."""
        for domain, mapping in zip(_DOMAINS, (self.edge_down, self.cloud_down, self.link_down)):
            for idx in sorted(mapping):
                for iv in mapping[idx]:
                    yield domain, idx, iv
