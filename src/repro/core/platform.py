"""The two-level edge-cloud platform (Section III-A).

A platform has :math:`P^e` edge computing units with speeds
:math:`s_j \\le 1` and :math:`P^c` cloud processors.  The paper keeps the
cloud homogeneous with speed normalized to 1; as it notes, extending to
heterogeneous cloud speeds is straightforward, so we carry a per-cloud
speed vector (all ones by default) and every algorithm honors it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.errors import ModelError
from repro.core.resources import Resource, ResourceKind, cloud, edge


@dataclass(frozen=True)
class Platform:
    """Immutable description of the edge-cloud platform."""

    edge_speeds: tuple[float, ...]
    cloud_speeds: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edge_speeds) == 0:
            raise ModelError("a platform needs at least one edge unit")
        for j, s in enumerate(self.edge_speeds):
            if not 0 < s <= 1:
                raise ModelError(
                    f"edge speed s_{j} must lie in (0, 1] — the model normalizes "
                    f"speeds to the cloud's — got {s}"
                )
        for k, s in enumerate(self.cloud_speeds):
            if not 0 < s or s != s or s == float("inf"):
                raise ModelError(f"cloud speed c_{k} must be positive and finite, got {s}")

    @classmethod
    def create(
        cls,
        edge_speeds: Sequence[float],
        n_cloud: int = 0,
        *,
        cloud_speeds: Sequence[float] | None = None,
    ) -> "Platform":
        """Build a platform from edge speeds and a cloud size.

        Either give ``n_cloud`` (homogeneous speed-1 cloud, the paper's
        setting) or an explicit ``cloud_speeds`` vector.
        """
        if cloud_speeds is not None:
            if n_cloud and n_cloud != len(cloud_speeds):
                raise ModelError(
                    f"n_cloud={n_cloud} disagrees with len(cloud_speeds)={len(cloud_speeds)}"
                )
            return cls(tuple(float(s) for s in edge_speeds), tuple(float(s) for s in cloud_speeds))
        if n_cloud < 0:
            raise ModelError(f"n_cloud must be non-negative, got {n_cloud}")
        return cls(tuple(float(s) for s in edge_speeds), tuple(1.0 for _ in range(n_cloud)))

    @property
    def n_edge(self) -> int:
        """Number of edge computing units (:math:`P^e`)."""
        return len(self.edge_speeds)

    @property
    def n_cloud(self) -> int:
        """Number of cloud processors (:math:`P^c`)."""
        return len(self.cloud_speeds)

    def speed(self, resource: Resource) -> float:
        """Speed of the given resource."""
        if resource.kind is ResourceKind.EDGE:
            if resource.index >= self.n_edge:
                raise ModelError(f"no such edge unit: {resource}")
            return self.edge_speeds[resource.index]
        if resource.index >= self.n_cloud:
            raise ModelError(f"no such cloud processor: {resource}")
        return self.cloud_speeds[resource.index]

    def resources(self) -> Iterator[Resource]:
        """All compute resources: edge units first, then cloud processors."""
        for j in range(self.n_edge):
            yield edge(j)
        for k in range(self.n_cloud):
            yield cloud(k)

    def cloud_resources(self) -> Iterator[Resource]:
        """The cloud processors only."""
        for k in range(self.n_cloud):
            yield cloud(k)

    def validate_origin(self, origin: int) -> None:
        """Raise ``ModelError`` unless ``origin`` names an edge unit."""
        if not 0 <= origin < self.n_edge:
            raise ModelError(
                f"job origin {origin} out of range for platform with {self.n_edge} edge units"
            )


def uniform_cloud_platform(edge_speeds: Sequence[float], n_cloud: int) -> Platform:
    """The paper's platform: heterogeneous edge, homogeneous speed-1 cloud."""
    return Platform.create(edge_speeds, n_cloud)
