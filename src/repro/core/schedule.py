"""Concrete schedule representation (Section III-B).

A schedule records, for each job, one or more *attempts*.  An attempt is
an execution of the job on one resource: its execution intervals
:math:`E_i` and, for a cloud attempt, its uplink intervals
:math:`U_i(o_i, k)` and downlink intervals :math:`D_i(k, o_i)`.

The model forbids migration but allows re-execution from scratch, so a
job can have several attempts; only the last one completes, earlier ones
are *abandoned* (their time is lost but they did occupy resources, so
the validator still checks them against the platform constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.intervals import Interval, IntervalSet
from repro.core.resources import Resource


@dataclass(slots=True)
class Attempt:
    """One (possibly abandoned) execution of a job on a fixed resource."""

    resource: Resource
    execution: IntervalSet = field(default_factory=IntervalSet)
    uplink: IntervalSet = field(default_factory=IntervalSet)
    downlink: IntervalSet = field(default_factory=IntervalSet)

    def copy(self) -> "Attempt":
        """Deep-ish copy (fresh interval sets with the same intervals)."""
        return Attempt(
            self.resource,
            IntervalSet(self.execution),
            IntervalSet(self.uplink),
            IntervalSet(self.downlink),
        )


@dataclass
class JobSchedule:
    """All attempts of one job plus its completion time (if completed)."""

    job_id: int
    attempts: list[Attempt] = field(default_factory=list)
    completion: float | None = None

    @property
    def final_attempt(self) -> Attempt:
        """The last attempt; raises if the job was never started."""
        if not self.attempts:
            raise ScheduleError(f"job {self.job_id} has no attempt", job=self.job_id)
        return self.attempts[-1]

    @property
    def allocation(self) -> Resource:
        """The paper's ``alloc(i)``: the resource of the final attempt."""
        return self.final_attempt.resource

    @property
    def completed(self) -> bool:
        """True when the job finished."""
        return self.completion is not None


class Schedule:
    """A complete schedule for an instance.

    Built either manually (tests, offline algorithms) or from a
    simulation trace (:mod:`repro.sim.trace`).  Use
    :func:`repro.core.validation.validate_schedule` to check it against
    the model and :mod:`repro.core.metrics` to score it.
    """

    def __init__(self, instance: Instance, job_schedules: Mapping[int, JobSchedule] | None = None):
        self.instance = instance
        self.job_schedules: dict[int, JobSchedule] = {
            i: JobSchedule(i) for i in range(instance.n_jobs)
        }
        if job_schedules:
            for i, js in job_schedules.items():
                if not 0 <= i < instance.n_jobs:
                    raise ScheduleError(f"job id {i} out of range", job=i)
                if js.job_id != i:
                    raise ScheduleError(
                        f"job schedule keyed {i} carries job_id {js.job_id}", job=i
                    )
                self.job_schedules[i] = js

    # -- construction helpers -------------------------------------------------

    def new_attempt(self, job_id: int, resource: Resource) -> Attempt:
        """Open a fresh attempt for ``job_id`` on ``resource`` and return it."""
        attempt = Attempt(resource)
        self.job_schedules[job_id].attempts.append(attempt)
        return attempt

    def add_execution(self, job_id: int, interval: Interval) -> None:
        """Append an execution interval to the job's current attempt."""
        self.job_schedules[job_id].final_attempt.execution.add(interval)

    def add_uplink(self, job_id: int, interval: Interval) -> None:
        """Append an uplink interval to the job's current attempt."""
        self.job_schedules[job_id].final_attempt.uplink.add(interval)

    def add_downlink(self, job_id: int, interval: Interval) -> None:
        """Append a downlink interval to the job's current attempt."""
        self.job_schedules[job_id].final_attempt.downlink.add(interval)

    def set_completion(self, job_id: int, time: float) -> None:
        """Mark ``job_id`` completed at ``time``."""
        self.job_schedules[job_id].completion = time

    # -- queries ---------------------------------------------------------------

    @property
    def all_completed(self) -> bool:
        """True when every job of the instance completed."""
        return all(js.completed for js in self.job_schedules.values())

    def completion_times(self) -> dict[int, float]:
        """Completion time per completed job."""
        return {
            i: js.completion
            for i, js in self.job_schedules.items()
            if js.completion is not None
        }

    def makespan(self) -> float:
        """Latest completion time (0 for an empty schedule)."""
        times = self.completion_times()
        return max(times.values(), default=0.0)

    def iter_job_schedules(self) -> Iterable[JobSchedule]:
        """Job schedules in job-id order."""
        return (self.job_schedules[i] for i in range(self.instance.n_jobs))
