"""Resource addressing: where a job may execute.

A job either runs on its origin edge unit or on one of the cloud
processors.  ``Resource`` is the single value type used across
schedulers, the engine, schedules, and the validator to name a compute
location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache


class ResourceKind(enum.Enum):
    """Which half of the platform a resource belongs to."""

    EDGE = "edge"
    CLOUD = "cloud"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Resource:
    """A compute location: ``(kind, index)``.

    ``index`` is 0-based within its kind: edge unit ``j`` is
    ``Resource(ResourceKind.EDGE, j)``, cloud processor ``k`` is
    ``Resource(ResourceKind.CLOUD, k)``.
    """

    kind: ResourceKind
    index: int

    def __post_init__(self) -> None:
        if not isinstance(self.kind, ResourceKind):
            raise TypeError(f"kind must be a ResourceKind, got {self.kind!r}")
        if self.index < 0:
            raise ValueError(f"resource index must be non-negative, got {self.index}")

    @property
    def is_edge(self) -> bool:
        """True for an edge compute unit."""
        return self.kind is ResourceKind.EDGE

    @property
    def is_cloud(self) -> bool:
        """True for a cloud processor."""
        return self.kind is ResourceKind.CLOUD

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.index}]"


@lru_cache(maxsize=4096)
def edge(index: int) -> Resource:
    """Shorthand for ``Resource(ResourceKind.EDGE, index)`` (memoized —
    resources are immutable values, and schedulers build them in hot
    per-event loops)."""
    return Resource(ResourceKind.EDGE, index)


@lru_cache(maxsize=4096)
def cloud(index: int) -> Resource:
    """Shorthand for ``Resource(ResourceKind.CLOUD, index)`` (memoized)."""
    return Resource(ResourceKind.CLOUD, index)
