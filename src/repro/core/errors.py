"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(ReproError):
    """Invalid model data (bad job, platform, or instance parameters)."""


class ScheduleError(ReproError):
    """A schedule violates the constraints of the edge-cloud model."""

    def __init__(self, message: str, *, job: int | None = None):
        super().__init__(message)
        #: Index of the offending job, when a single job is at fault.
        self.job = job


class SimulationError(ReproError):
    """Internal inconsistency detected while running the event engine."""


class DecisionError(ReproError):
    """A scheduler returned a malformed or illegal decision."""


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its per-cell wall-clock timeout budget.

    Raised inside a worker by the harness's alarm guard; the driver
    catches it like any other cell failure and applies the configured
    ``--on-cell-error`` policy (fail, skip, or retry).
    """
