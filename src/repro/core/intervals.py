"""Closed-open time intervals and interval-set algebra.

Schedules are sets of disjoint execution/communication intervals (the
paper's :math:`E_i`, :math:`U_i`, :math:`D_i`).  Intervals are treated as
half-open ``[start, end)`` so that back-to-back intervals do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.util.float_cmp import DEFAULT_ABS_TOL, fle


@dataclass(frozen=True, order=True, slots=True)
class Interval:
    """A half-open time interval ``[start, end)`` with positive length."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(f"interval must have positive length: [{self.start}, {self.end})")

    @property
    def length(self) -> float:
        """Duration ``end - start``."""
        return self.end - self.start

    def overlaps(self, other: "Interval", *, tol: float = DEFAULT_ABS_TOL) -> bool:
        """True when the two intervals share more than ``tol`` of time."""
        return min(self.end, other.end) - max(self.start, other.start) > tol

    def contains_time(self, t: float) -> bool:
        """True when ``t`` is inside ``[start, end)``."""
        return self.start <= t < self.end

    def __str__(self) -> str:
        return f"[{self.start:g}, {self.end:g})"


class IntervalSet:
    """A collection of pairwise-disjoint intervals, kept sorted.

    Adjacent intervals (end of one == start of next) are coalesced when
    ``merge_adjacent`` is set, which keeps traces compact.
    """

    __slots__ = ("_merge", "_intervals")

    def __init__(self, intervals: Iterable[Interval] = (), *, merge_adjacent: bool = True):
        self._merge = merge_adjacent
        self._intervals: list[Interval] = []
        if intervals:
            for iv in sorted(intervals):
                self.add(iv)

    def add(self, interval: Interval) -> None:
        """Insert an interval; it must not overlap existing content."""
        items = self._intervals
        if items and interval.start < items[-1].start:
            # Out-of-order insert: fall back to re-sorting (rare path).
            items.append(interval)
            items.sort()
            self._check_disjoint()
            return
        if items and items[-1].overlaps(interval):
            raise ValueError(f"interval {interval} overlaps {items[-1]}")
        if self._merge and items and abs(items[-1].end - interval.start) <= DEFAULT_ABS_TOL:
            items[-1] = Interval(items[-1].start, interval.end)
        else:
            items.append(interval)

    def _check_disjoint(self) -> None:
        for a, b in zip(self._intervals, self._intervals[1:]):
            if a.overlaps(b):
                raise ValueError(f"intervals {a} and {b} overlap")

    @property
    def intervals(self) -> Sequence[Interval]:
        """The sorted, disjoint intervals."""
        return tuple(self._intervals)

    def total_length(self) -> float:
        """Sum of interval lengths."""
        return sum(iv.length for iv in self._intervals)

    def min_start(self) -> float:
        """Earliest start (``min(E)`` in the paper); inf when empty."""
        return self._intervals[0].start if self._intervals else float("inf")

    def max_end(self) -> float:
        """Latest end (``max(E)`` in the paper); -inf when empty."""
        return self._intervals[-1].end if self._intervals else float("-inf")

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)


def intervals_disjoint(
    a: Iterable[Interval], b: Iterable[Interval], *, tol: float = DEFAULT_ABS_TOL
) -> bool:
    """True when no interval of ``a`` overlaps any interval of ``b``.

    Linear merge over the two sorted sequences.
    """
    sa = sorted(a)
    sb = sorted(b)
    i = j = 0
    while i < len(sa) and j < len(sb):
        if sa[i].overlaps(sb[j], tol=tol):
            return False
        if sa[i].end <= sb[j].end:
            i += 1
        else:
            j += 1
    return True


def precedes(first: IntervalSet, second: IntervalSet, *, strict: bool = False) -> bool:
    """True when all of ``first`` ends no later than ``second`` starts.

    Empty sets trivially satisfy the precedence (there is nothing to
    order).  With ``strict`` the comparison disallows tolerance slack.
    """
    if not first or not second:
        return True
    if strict:
        return first.max_end() <= second.min_start()
    return fle(first.max_end(), second.min_start())
