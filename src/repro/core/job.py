"""The job model of the paper (Section III-A).

Job :math:`J_i` is described by five parameters:

* ``origin`` — index :math:`o_i` of the edge unit that generates it and
  that must obtain its result;
* ``work`` — amount of work :math:`w_i` (time units on a speed-1
  processor);
* ``release`` — release date :math:`r_i`;
* ``up`` / ``dn`` — uplink and downlink communication times
  :math:`up_i` / :math:`dn_i` needed when the job is delegated to the
  cloud.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ModelError


@dataclass(frozen=True)
class Job:
    """One independent job, immutable.

    All time quantities are in abstract time units; ``work`` is expressed
    as execution time on a speed-1 (cloud) processor.
    """

    origin: int
    work: float
    release: float = 0.0
    up: float = 0.0
    dn: float = 0.0

    def __post_init__(self) -> None:
        if self.origin < 0:
            raise ModelError(f"job origin must be a valid edge index, got {self.origin}")
        if not self.work > 0:
            raise ModelError(f"job work must be positive, got {self.work}")
        if self.release < 0:
            raise ModelError(f"job release date must be non-negative, got {self.release}")
        if self.up < 0 or self.dn < 0:
            raise ModelError(
                f"communication times must be non-negative, got up={self.up}, dn={self.dn}"
            )
        for name in ("work", "release", "up", "dn"):
            value = getattr(self, name)
            if value != value or value in (float("inf"), float("-inf")):
                raise ModelError(f"job {name} must be finite, got {value}")

    def edge_time(self, edge_speed: float) -> float:
        """Execution time :math:`t^e_i = w_i / s_{o_i}` on an edge unit of the given speed."""
        if not edge_speed > 0:
            raise ModelError(f"edge speed must be positive, got {edge_speed}")
        return self.work / edge_speed

    def cloud_time(self, cloud_speed: float = 1.0) -> float:
        """Execution time :math:`t^c_i = up_i + w_i/speed + dn_i` on a cloud processor."""
        if not cloud_speed > 0:
            raise ModelError(f"cloud speed must be positive, got {cloud_speed}")
        return self.up + self.work / cloud_speed + self.dn
