"""Scheduling metrics: stretch, flow time, makespan, utilization.

The paper's objective is the maximum stretch
:math:`S_i = (C_i - r_i) / \\min(t^e_i, t^c_i)`; average stretch and
flow-time metrics are provided too since the related work (SRPT [28],
average stretch [5]) is framed in terms of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.schedule import Schedule


def stretches(schedule: Schedule) -> np.ndarray:
    """Per-job stretches ``(C_i - r_i) / min_time_i`` (job-id order)."""
    instance = schedule.instance
    completions = np.empty(instance.n_jobs, dtype=np.float64)
    for i, js in enumerate(schedule.iter_job_schedules()):
        if js.completion is None:
            raise ScheduleError(f"job {i} not completed; stretch undefined", job=i)
        completions[i] = js.completion
    return (completions - instance.release) / instance.min_time


def max_stretch(schedule: Schedule) -> float:
    """The paper's objective: the maximum stretch over all jobs."""
    values = stretches(schedule)
    return float(values.max()) if values.size else 0.0


def average_stretch(schedule: Schedule) -> float:
    """Mean stretch over all jobs (the metric of [5], [28])."""
    values = stretches(schedule)
    return float(values.mean()) if values.size else 0.0


def flow_times(schedule: Schedule) -> np.ndarray:
    """Per-job response times ``C_i - r_i``."""
    instance = schedule.instance
    out = np.empty(instance.n_jobs, dtype=np.float64)
    for i, js in enumerate(schedule.iter_job_schedules()):
        if js.completion is None:
            raise ScheduleError(f"job {i} not completed; flow time undefined", job=i)
        out[i] = js.completion - instance.jobs[i].release
    return out


def max_flow_time(schedule: Schedule) -> float:
    """Maximum response time over all jobs."""
    values = flow_times(schedule)
    return float(values.max()) if values.size else 0.0


def total_flow_time(schedule: Schedule) -> float:
    """Sum of response times (total flow time)."""
    return float(flow_times(schedule).sum())


@dataclass(frozen=True)
class UtilizationReport:
    """Fraction of busy time per resource class over the makespan."""

    makespan: float
    edge_busy: tuple[float, ...]
    cloud_busy: tuple[float, ...]
    cloud_jobs: int
    edge_jobs: int
    reexecutions: int

    @property
    def cloud_fraction(self) -> float:
        """Fraction of jobs whose final execution happened on the cloud."""
        total = self.cloud_jobs + self.edge_jobs
        return self.cloud_jobs / total if total else 0.0


def utilization(schedule: Schedule) -> UtilizationReport:
    """Aggregate busy time and placement statistics for a schedule."""
    instance = schedule.instance
    span = schedule.makespan()
    edge_busy = [0.0] * instance.platform.n_edge
    cloud_busy = [0.0] * instance.platform.n_cloud
    cloud_jobs = edge_jobs = reexec = 0

    for js in schedule.iter_job_schedules():
        reexec += max(0, len(js.attempts) - 1)
        for attempt in js.attempts:
            busy = attempt.execution.total_length()
            if attempt.resource.is_edge:
                edge_busy[attempt.resource.index] += busy
            else:
                cloud_busy[attempt.resource.index] += busy
        if js.attempts:
            if js.allocation.is_cloud:
                cloud_jobs += 1
            else:
                edge_jobs += 1

    norm = span if span > 0 else 1.0
    return UtilizationReport(
        makespan=span,
        edge_busy=tuple(b / norm for b in edge_busy),
        cloud_busy=tuple(b / norm for b in cloud_busy),
        cloud_jobs=cloud_jobs,
        edge_jobs=edge_jobs,
        reexecutions=reexec,
    )


def stretch_of_completion(instance: Instance, i: int, completion: float) -> float:
    """Stretch of job ``i`` if it completes at ``completion``."""
    return (completion - instance.jobs[i].release) / float(instance.min_time[i])
