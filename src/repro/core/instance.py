"""A problem instance: a platform plus a set of jobs.

``Instance`` also precomputes, as flat NumPy arrays, the per-job derived
quantities every algorithm needs (edge time, best cloud time, the
dedicated-system time ``min(t_e, t_c)`` that is the stretch denominator).
Hot per-event loops in the schedulers operate on these arrays rather
than on ``Job`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.resources import Resource, ResourceKind


@dataclass(frozen=True)
class Instance:
    """Immutable problem instance for MinMaxStretch-EdgeCloud."""

    platform: Platform
    jobs: tuple[Job, ...]

    # Derived flat arrays (filled in __post_init__, all length n).
    origin: np.ndarray = field(init=False, repr=False, compare=False)
    work: np.ndarray = field(init=False, repr=False, compare=False)
    release: np.ndarray = field(init=False, repr=False, compare=False)
    up: np.ndarray = field(init=False, repr=False, compare=False)
    dn: np.ndarray = field(init=False, repr=False, compare=False)
    edge_time: np.ndarray = field(init=False, repr=False, compare=False)
    best_cloud_time: np.ndarray = field(init=False, repr=False, compare=False)
    min_time: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for i, job in enumerate(self.jobs):
            try:
                self.platform.validate_origin(job.origin)
            except ModelError as exc:
                raise ModelError(f"job {i}: {exc}") from exc

        n = len(self.jobs)
        origin = np.fromiter((j.origin for j in self.jobs), dtype=np.int64, count=n)
        work = np.fromiter((j.work for j in self.jobs), dtype=np.float64, count=n)
        release = np.fromiter((j.release for j in self.jobs), dtype=np.float64, count=n)
        up = np.fromiter((j.up for j in self.jobs), dtype=np.float64, count=n)
        dn = np.fromiter((j.dn for j in self.jobs), dtype=np.float64, count=n)

        edge_speeds = np.asarray(self.platform.edge_speeds, dtype=np.float64)
        edge_time = work / edge_speeds[origin] if n else np.zeros(0)

        if self.platform.n_cloud:
            fastest_cloud = max(self.platform.cloud_speeds)
            best_cloud_time = up + work / fastest_cloud + dn
        else:
            best_cloud_time = np.full(n, np.inf)

        min_time = np.minimum(edge_time, best_cloud_time)

        for name, arr in (
            ("origin", origin),
            ("work", work),
            ("release", release),
            ("up", up),
            ("dn", dn),
            ("edge_time", edge_time),
            ("best_cloud_time", best_cloud_time),
            ("min_time", min_time),
        ):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @classmethod
    def create(cls, platform: Platform, jobs: Iterable[Job]) -> "Instance":
        """Build an instance from any iterable of jobs."""
        return cls(platform, tuple(jobs))

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the instance."""
        return len(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def time_on(self, i: int, resource: Resource) -> float:
        """Total dedicated time of job ``i`` on ``resource`` (incl. transfers)."""
        job = self.jobs[i]
        if resource.kind is ResourceKind.EDGE:
            if resource.index != job.origin:
                raise ModelError(
                    f"job {i} originates from edge {job.origin}; it cannot run on {resource}"
                )
            return job.edge_time(self.platform.speed(resource))
        return job.cloud_time(self.platform.speed(resource))

    def delta(self) -> float:
        """The ratio Δ between the longest and shortest job (by min_time).

        This is the quantity in the competitive ratio of the
        stretch-so-far EDF algorithms of Bender et al.
        """
        if not self.jobs:
            raise ModelError("delta() is undefined for an empty instance")
        mt = self.min_time
        return float(mt.max() / mt.min())

    def restricted_to(self, job_ids: Sequence[int]) -> "Instance":
        """A sub-instance keeping only the given jobs (same platform)."""
        return Instance(self.platform, tuple(self.jobs[i] for i in job_ids))
