"""Independent schedule validity checker (the constraints of Section III-B).

This module shares no code with the simulation engine: it re-derives
every constraint of the paper directly from a :class:`Schedule`, so it
can be used to cross-check the engine (and any hand-built schedule).

Checked constraints:

* an edge attempt runs on the job's origin unit, a cloud attempt on an
  existing cloud processor;
* no activity starts before the job's release date;
* per-job phase ordering — the uplink finishes before computation
  starts, computation finishes before the downlink starts
  (``max(U_i) <= min(E_i)`` and ``max(E_i) <= min(D_i)``);
* the final attempt carries the full amounts (work / speed, up, dn);
  abandoned attempts carry at most the full amounts;
* compute exclusivity: execution intervals on one processor are
  pairwise disjoint across jobs;
* one-port full-duplex: per edge unit, all uplink (send) intervals are
  pairwise disjoint, and all downlink (receive) intervals are pairwise
  disjoint; same per cloud processor (receive = uplinks, send =
  downlinks);
* the recorded completion time matches the end of the final activity.

Runs executed under a checkpoint/restart policy
(:class:`repro.sim.checkpoint.CheckpointPolicy`) break the per-attempt
*amount* constraints by design: an attempt resuming from a committed
watermark redoes less than the full amounts, commit overhead adds extra
work, and a retry budget may leave jobs uncompleted.  Pass
``checkpointing=True`` to relax exactly those checks while keeping the
structural ones (placement, ordering, exclusivity, completion-time
consistency) in force.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.errors import ScheduleError
from repro.core.intervals import Interval
from repro.core.resources import Resource, ResourceKind
from repro.core.schedule import Attempt, Schedule
from repro.util.float_cmp import DEFAULT_ABS_TOL, feq, fge, fle

#: Tolerance (in time units) used for all validation comparisons.
VALIDATION_TOL = 1e-6


def validate_schedule(
    schedule: Schedule, *, require_complete: bool = True, checkpointing: bool = False
) -> list[str]:
    """Check ``schedule`` against the model; return a list of violations.

    With ``require_complete`` every job must be completed.
    ``checkpointing`` relaxes the per-attempt amount checks (see the
    module docstring) for runs executed under a checkpoint policy.
    Raises nothing; callers who want an exception can use
    :func:`assert_valid_schedule`.
    """
    errors: list[str] = []
    instance = schedule.instance

    # Per-resource activity pools for the exclusivity checks.
    compute_pool: dict[Resource, list[tuple[int, Interval]]] = defaultdict(list)
    edge_send: dict[int, list[tuple[int, Interval]]] = defaultdict(list)
    edge_recv: dict[int, list[tuple[int, Interval]]] = defaultdict(list)
    cloud_recv: dict[int, list[tuple[int, Interval]]] = defaultdict(list)
    cloud_send: dict[int, list[tuple[int, Interval]]] = defaultdict(list)

    for js in schedule.iter_job_schedules():
        i = js.job_id
        job = instance.jobs[i]

        if not js.attempts:
            if require_complete:
                errors.append(f"job {i}: never scheduled")
            continue
        if require_complete and not js.completed:
            errors.append(f"job {i}: not completed")

        prev_end = job.release
        for a_idx, attempt in enumerate(js.attempts):
            is_final = a_idx == len(js.attempts) - 1
            errors.extend(
                _check_attempt(
                    instance,
                    i,
                    attempt,
                    is_final=is_final and js.completed,
                    checkpointing=checkpointing,
                )
            )

            # Attempts must be time-ordered: a re-execution starts after
            # the abandoned attempt stops, and nothing precedes release.
            starts = [
                s.min_start()
                for s in (attempt.uplink, attempt.execution, attempt.downlink)
                if s
            ]
            ends = [
                s.max_end()
                for s in (attempt.uplink, attempt.execution, attempt.downlink)
                if s
            ]
            if starts and not fge(min(starts), prev_end, abs_=VALIDATION_TOL):
                errors.append(
                    f"job {i} attempt {a_idx}: starts at {min(starts)} before "
                    f"{'release' if a_idx == 0 else 'previous attempt end'} {prev_end}"
                )
            if ends:
                prev_end = max(ends)

            # Collect resource usage.
            res = attempt.resource
            for iv in attempt.execution:
                compute_pool[res].append((i, iv))
            if res.kind is ResourceKind.CLOUD:
                for iv in attempt.uplink:
                    edge_send[job.origin].append((i, iv))
                    cloud_recv[res.index].append((i, iv))
                for iv in attempt.downlink:
                    cloud_send[res.index].append((i, iv))
                    edge_recv[job.origin].append((i, iv))

        if js.completed:
            final = js.final_attempt
            last = final.downlink if final.resource.kind is ResourceKind.CLOUD else final.execution
            if last and not feq(js.completion, last.max_end(), abs_=VALIDATION_TOL):
                errors.append(
                    f"job {i}: completion {js.completion} != end of final activity "
                    f"{last.max_end()}"
                )

    for res, usage in compute_pool.items():
        errors.extend(_check_exclusive(usage, f"compute on {res}"))
    for j, usage in edge_send.items():
        errors.extend(_check_exclusive(usage, f"edge[{j}] send port"))
    for j, usage in edge_recv.items():
        errors.extend(_check_exclusive(usage, f"edge[{j}] receive port"))
    for k, usage in cloud_recv.items():
        errors.extend(_check_exclusive(usage, f"cloud[{k}] receive port"))
    for k, usage in cloud_send.items():
        errors.extend(_check_exclusive(usage, f"cloud[{k}] send port"))

    return errors


def _check_attempt(
    instance, i: int, attempt: Attempt, *, is_final: bool, checkpointing: bool = False
) -> list[str]:
    """Per-attempt checks: placement, phase ordering, amounts."""
    errors: list[str] = []
    job = instance.jobs[i]
    res = attempt.resource

    if res.kind is ResourceKind.EDGE:
        if res.index != job.origin:
            errors.append(
                f"job {i}: runs on {res} but originates from edge[{job.origin}] "
                "(migration between edge units is not allowed)"
            )
        if attempt.uplink or attempt.downlink:
            errors.append(f"job {i}: edge attempt must not communicate")
        speed = instance.platform.edge_speeds[job.origin]
        need_exec = job.work / speed
    else:
        if res.index >= instance.platform.n_cloud:
            errors.append(f"job {i}: runs on nonexistent {res}")
            return errors
        speed = instance.platform.cloud_speeds[res.index]
        need_exec = job.work / speed
        # Phase ordering.
        if attempt.uplink and attempt.execution and not fle(
            attempt.uplink.max_end(), attempt.execution.min_start(), abs_=VALIDATION_TOL
        ):
            errors.append(f"job {i}: computation starts before its uplink completes")
        if attempt.execution and attempt.downlink and not fle(
            attempt.execution.max_end(), attempt.downlink.min_start(), abs_=VALIDATION_TOL
        ):
            errors.append(f"job {i}: downlink starts before its computation completes")
        # A phase may only begin once the previous phase is *fully* done.
        # Under checkpointing a committed watermark stands in for the
        # missing prefix, so the amount-based forms cannot be checked.
        if not checkpointing:
            if attempt.execution and attempt.uplink.total_length() + VALIDATION_TOL < job.up:
                errors.append(f"job {i}: computes on the cloud with an incomplete uplink")
            if attempt.downlink and attempt.execution.total_length() * speed + VALIDATION_TOL < job.work:
                errors.append(f"job {i}: downlink starts with incomplete computation")

    if checkpointing:
        # Resumed attempts redo less, commit overhead adds more: no
        # amount bound holds per attempt.
        return errors
    amounts = [
        ("execution", attempt.execution.total_length(), need_exec),
    ]
    if res.kind is ResourceKind.CLOUD:
        amounts += [
            ("uplink", attempt.uplink.total_length(), job.up),
            ("downlink", attempt.downlink.total_length(), job.dn),
        ]
    for name, got, need in amounts:
        if is_final and got + VALIDATION_TOL < need:
            errors.append(f"job {i}: final attempt {name} amount {got} < required {need}")
        if got > need + VALIDATION_TOL:
            errors.append(f"job {i}: {name} amount {got} exceeds required {need}")
    return errors


def _check_exclusive(usage: list[tuple[int, Interval]], what: str) -> list[str]:
    """All intervals in ``usage`` must be pairwise disjoint."""
    errors = []
    usage = sorted(usage, key=lambda item: (item[1].start, item[1].end))
    for (i, a), (j, b) in zip(usage, usage[1:]):
        if a.overlaps(b, tol=VALIDATION_TOL):
            errors.append(f"{what}: jobs {i} ({a}) and {j} ({b}) overlap")
    return errors


def assert_valid_schedule(schedule: Schedule, *, require_complete: bool = True) -> None:
    """Raise :class:`ScheduleError` listing all violations, if any."""
    errors = validate_schedule(schedule, require_complete=require_complete)
    if errors:
        raise ScheduleError(
            f"invalid schedule ({len(errors)} violation(s)):\n  " + "\n  ".join(errors)
        )
