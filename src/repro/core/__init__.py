"""Core data model: jobs, platform, instances, schedules, validation, metrics."""

from repro.core.errors import (
    DecisionError,
    ModelError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.core.instance import Instance
from repro.core.intervals import Interval, IntervalSet
from repro.core.job import Job
from repro.core.metrics import (
    average_stretch,
    flow_times,
    max_flow_time,
    max_stretch,
    stretches,
    total_flow_time,
    utilization,
)
from repro.core.platform import Platform, uniform_cloud_platform
from repro.core.resources import Resource, ResourceKind, cloud, edge
from repro.core.schedule import Attempt, JobSchedule, Schedule
from repro.core.validation import assert_valid_schedule, validate_schedule

__all__ = [
    "ReproError",
    "ModelError",
    "ScheduleError",
    "SimulationError",
    "DecisionError",
    "Job",
    "Platform",
    "uniform_cloud_platform",
    "Instance",
    "Interval",
    "IntervalSet",
    "Resource",
    "ResourceKind",
    "edge",
    "cloud",
    "Attempt",
    "JobSchedule",
    "Schedule",
    "validate_schedule",
    "assert_valid_schedule",
    "stretches",
    "max_stretch",
    "average_stretch",
    "flow_times",
    "max_flow_time",
    "total_flow_time",
    "utilization",
]
