"""``repro-simulate``: run one policy on one instance and inspect it.

Examples::

    # Archive a generated instance, then simulate and render it.
    python -c "from repro.workloads import *; from repro.io import save_instance; \\
               save_instance(generate_random_instance(RandomInstanceConfig(n_jobs=8), seed=1), 'inst.json')"
    repro-simulate inst.json --policy ssf-edf --gantt
    repro-simulate inst.json --policy srpt --save-schedule sched.json

    # Or generate on the fly:
    repro-simulate --generate random --n-jobs 12 --policy greedy --gantt
    repro-simulate --generate kang --n-jobs 12 --policy ssf-edf --breakdown
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.gantt import render_gantt
from repro.analysis.timeline import all_breakdowns
from repro.core.metrics import utilization
from repro.core.validation import validate_schedule
from repro.io.json_format import load_instance, save_schedule
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS
from repro.obs.sinks import telemetry_record, write_telemetry_jsonl
from repro.obs.telemetry import RunTelemetry, collect_telemetry
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from repro.sim.hooks import StepTimingProfiler, StretchWatermarkMonitor, make_hooks
from repro.workloads.kang import KangConfig, generate_kang_instance
from repro.workloads.random_uniform import RandomInstanceConfig, generate_random_instance


def _interval_arg(text: str):
    """``--checkpoint-interval`` value: work units, or ``auto`` (Young/Daly)."""
    if text == "auto":
        return "auto"
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of work units or 'auto', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The repro-simulate argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Simulate one scheduling policy on one edge-cloud instance.",
    )
    parser.add_argument("instance", nargs="?", help="instance JSON file (omit with --generate)")
    parser.add_argument(
        "--generate",
        choices=["random", "kang"],
        help="generate an instance instead of loading one",
    )
    parser.add_argument("--n-jobs", type=int, default=10, help="jobs when generating")
    parser.add_argument("--ccr", type=float, default=1.0, help="CCR for --generate random")
    parser.add_argument("--load", type=float, default=0.05, help="load when generating")
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    parser.add_argument(
        "--policy",
        default="ssf-edf",
        choices=sorted(available_schedulers()),
        help="scheduling policy",
    )
    parser.add_argument(
        "--list-schedulers",
        action="store_true",
        help="list the registered schedulers (paper policies marked) and exit",
    )
    parser.add_argument(
        "--failure-aware",
        action="store_true",
        help="run the failure-aware variant of the policy when one exists "
        "(ssf-edf -> ssf-edf-fa, greedy -> greedy-fa, srpt -> srpt-fa, "
        "fcfs -> fcfs-fa; schedules from the discounted capacity outlook)",
    )
    parser.add_argument(
        "--fault-correlation",
        type=int,
        default=1,
        metavar="G",
        help="correlated-failure group size of the generated fault trace: "
        "consecutive resources in groups of G share their fault windows "
        "(default 1 = independent; needs --fault-mtbf)",
    )
    parser.add_argument("--gantt", action="store_true", help="render an ASCII Gantt chart")
    parser.add_argument("--width", type=int, default=100, help="gantt width in cells")
    parser.add_argument("--breakdown", action="store_true", help="per-job time breakdown")
    parser.add_argument("--fairness", action="store_true", help="stretch-distribution report")
    parser.add_argument(
        "--profile", action="store_true", help="per-step wall-time profile of the engine"
    )
    parser.add_argument(
        "--watermark",
        action="store_true",
        help="show how the max-stretch watermark built up over the run",
    )
    parser.add_argument("--save-schedule", metavar="PATH", help="write the schedule JSON here")
    parser.add_argument("--svg-gantt", metavar="PATH", help="write an SVG Gantt chart here")
    parser.add_argument(
        "--instrument",
        action="append",
        default=None,
        metavar="HOOK",
        help="attach a registered engine hook to the run (repeatable); "
        "telemetry monitors: util, queue, jobstats, reexec, faults, scheduler",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write the run's telemetry as one JSONL record (instruments "
        "with the default telemetry hooks when no --instrument is given)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record a causal run trace (job spans + decision provenance) "
        "and write it as versioned JSONL; inspect with repro-trace",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="PATH",
        help="also write the trace as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing; implies tracing)",
    )
    parser.add_argument(
        "--fault-mtbf",
        type=float,
        metavar="T",
        help="inject crashes/outages: mean time between failures per "
        "resource (exponential renewal model, see repro.faults)",
    )
    parser.add_argument(
        "--fault-mttr",
        type=float,
        metavar="T",
        help="mean time to repair (default: 0.1 * MTBF)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault renewal process (independent of --seed)",
    )
    parser.add_argument(
        "--fault-groups",
        type=str,
        default=None,
        metavar="SPEC",
        help="topology-driven correlated fault groups, e.g. "
        "'edge:0,1;link:0-2' — each listed group shares one failure "
        "renewal sequence; memberships may overlap (needs --fault-mtbf; "
        "mutually exclusive with --fault-correlation)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=_interval_arg,
        default=None,
        metavar="WORK|auto",
        help="checkpoint/restart: commit compute progress every WORK work "
        "units; a fault-aborted or re-placed attempt resumes from the "
        "last commit instead of from scratch.  'auto' derives the "
        "Young/Daly optimum sqrt(2*MTBF*cost) from the run's fault "
        "rates (needs --fault-mtbf and a positive --checkpoint-cost)",
    )
    parser.add_argument(
        "--checkpoint-cost",
        type=float,
        default=0.0,
        metavar="WORK",
        help="extra work burned per checkpoint commit (default 0)",
    )
    parser.add_argument(
        "--checkpoint-phases",
        action="store_true",
        help="also commit at the uplink/compute phase boundary (a completed "
        "upload survives later aborts)",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        metavar="K",
        help="graceful degradation: abandon a job after K fault-aborted "
        "attempts instead of retrying forever",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_schedulers:
        from repro.schedulers.registry import PAPER_SCHEDULERS

        print("registered schedulers ([paper] = evaluated in the paper's Section VI):")
        for name in available_schedulers():
            marker = "  [paper]" if name in PAPER_SCHEDULERS else ""
            print(f"  {name}{marker}")
        return 0

    if args.generate == "random":
        instance = generate_random_instance(
            RandomInstanceConfig(n_jobs=args.n_jobs, ccr=args.ccr, load=args.load),
            seed=args.seed,
        )
    elif args.generate == "kang":
        instance = generate_kang_instance(
            KangConfig(n_jobs=args.n_jobs, load=args.load), seed=args.seed
        )
    elif args.instance:
        instance = load_instance(args.instance)
    else:
        parser.error("give an instance file or --generate")
        return 2  # pragma: no cover - parser.error raises

    faults = None
    if args.fault_mttr is not None and args.fault_mtbf is None:
        parser.error("--fault-mttr requires --fault-mtbf")
    if args.fault_correlation != 1 and args.fault_mtbf is None:
        parser.error("--fault-correlation requires --fault-mtbf")
    if args.fault_groups is not None and args.fault_mtbf is None:
        parser.error("--fault-groups requires --fault-mtbf")
    if args.fault_groups is not None and args.fault_correlation != 1:
        parser.error("--fault-groups and --fault-correlation are mutually exclusive")
    if args.fault_mtbf is not None:
        from repro.faults import FaultClassParams, exponential_fault_trace, parse_fault_groups

        params = FaultClassParams(
            mtbf=args.fault_mtbf,
            mttr=args.fault_mttr if args.fault_mttr is not None else 0.1 * args.fault_mtbf,
        )
        faults = exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=float(instance.release.max() + instance.min_time.sum()),
            seed=args.fault_seed,
            edge=params,
            cloud=params,
            link=params,
            group_size=args.fault_correlation,
            groups=(
                parse_fault_groups(args.fault_groups)
                if args.fault_groups is not None
                else None
            ),
        )

    checkpoint = None
    if args.checkpoint_cost != 0.0 and args.checkpoint_interval is None:
        parser.error("--checkpoint-cost requires --checkpoint-interval")
    if args.checkpoint_interval == "auto" and args.fault_mtbf is None:
        parser.error("--checkpoint-interval auto requires --fault-mtbf")
    if (
        args.checkpoint_interval is not None
        or args.checkpoint_phases
        or args.retry_budget is not None
    ):
        from repro.sim.checkpoint import CheckpointPolicy

        auto = args.checkpoint_interval == "auto"
        checkpoint = CheckpointPolicy(
            interval=None if auto else args.checkpoint_interval,
            commit_cost=args.checkpoint_cost,
            phase_boundaries=args.checkpoint_phases,
            retry_budget=args.retry_budget,
            auto_interval=auto,
        )

    policy = args.policy
    if args.failure_aware:
        if policy == "ssf-edf":
            policy = "ssf-edf-fa"
        elif policy == "greedy":
            policy = "greedy-fa"
        elif policy == "srpt":
            policy = "srpt-fa"
        elif policy == "fcfs":
            policy = "fcfs-fa"
        elif policy not in (
            "ssf-edf-fa",
            "ssf-edf-fa-rework",
            "greedy-fa",
            "srpt-fa",
            "fcfs-fa",
        ):
            parser.error(f"--failure-aware has no variant for policy {policy!r}")

    scheduler = (
        make_scheduler(policy, seed=args.seed)
        if policy == "random"
        else make_scheduler(policy)
    )
    profiler = StepTimingProfiler() if args.profile else None
    watermark = StretchWatermarkMonitor() if args.watermark else None
    hooks = [h for h in (profiler, watermark) if h is not None]
    instrument = list(args.instrument or [])
    if args.telemetry_out and not instrument:
        instrument = list(DEFAULT_TELEMETRY_HOOKS)
    if faults is not None and "faults" not in instrument:
        instrument.append("faults")
    if (args.trace_out or args.trace_chrome) and "tracing" not in instrument:
        instrument.append("tracing")
    hooks.extend(make_hooks(instrument))
    result = simulate(instance, scheduler, faults=faults, checkpoint=checkpoint, hooks=hooks)
    telemetry = collect_telemetry(hooks)

    errors = validate_schedule(
        result.schedule,
        require_complete=checkpoint is None or checkpoint.retry_budget is None,
        checkpointing=checkpoint is not None and checkpoint.checkpoints_enabled,
    )
    rep = utilization(result.schedule)
    print(f"policy:       {policy}")
    print(f"jobs:         {instance.n_jobs}  (edge {instance.platform.n_edge}, "
          f"cloud {instance.platform.n_cloud})")
    print(f"max-stretch:  {result.max_stretch:.4f}")
    print(f"avg-stretch:  {result.average_stretch:.4f}")
    print(f"makespan:     {result.makespan:.4f}")
    print(f"cloud share:  {rep.cloud_fraction:.0%}   re-executions: {result.n_reexecutions}")
    print(f"validated:    {'OK' if not errors else 'INVALID'}")
    if faults is not None and telemetry is not None:
        crashes = telemetry.metrics.counter("faults.crashes").value
        outages = telemetry.metrics.counter("faults.link_outages").value
        aborted = telemetry.metrics.counter("faults.aborted_attempts").value
        wasted = (
            telemetry.metrics.counter("faults.wasted_work").value
            + telemetry.metrics.counter("faults.wasted_uplink").value
            + telemetry.metrics.counter("faults.wasted_downlink").value
        )
        print(
            f"faults:       {crashes:g} crashes, {outages:g} link outages, "
            f"{aborted:g} attempts aborted, {wasted:.4g} units wasted"
        )
    if checkpoint is not None and telemetry is not None:
        metrics = telemetry.metrics
        commits = (
            metrics.counter("faults.checkpoint_commits").value
            if "faults.checkpoint_commits" in metrics
            else 0.0
        )
        abandoned = (
            metrics.counter("faults.abandoned_jobs").value
            if "faults.abandoned_jobs" in metrics
            else 0.0
        )
        print(
            f"checkpoint:   {commits:g} commits, "
            f"{abandoned:g} abandoned job(s) (of {result.n_abandoned} total)"
        )
    for e in errors[:10]:
        print(f"  violation: {e}", file=sys.stderr)

    if args.gantt:
        print()
        print(render_gantt(result.schedule, width=args.width))

    if args.breakdown:
        print()
        print(f"{'job':>4} {'response':>9} {'comm':>8} {'exec':>8} {'lost':>8} "
              f"{'wait':>8} {'wait%':>6}")
        for b in all_breakdowns(result.schedule):
            print(
                f"{b.job:>4} {b.response:>9.2f} {b.communication:>8.2f} "
                f"{b.execution:>8.2f} {b.lost:>8.2f} {b.waiting:>8.2f} "
                f"{b.waiting_fraction:>6.0%}"
            )

    if args.fairness:
        from repro.analysis.fairness import fairness_report

        report = fairness_report(result.stretches())
        print()
        print(report)
        print(f"tail ratio (p99/median): {report.tail_ratio:.2f}")

    if profiler is not None:
        print()
        print(f"step timing:  {profiler.report()}")

    if watermark is not None:
        print()
        print("max-stretch watermark history:")
        for sample in watermark.history:
            print(
                f"  t={sample.time:>10.4f}  job {sample.job:>4}  "
                f"stretch -> {sample.stretch:.4f}"
            )
        print(
            f"  argmax: job {watermark.argmax_job} "
            f"(stretch {watermark.watermark:.4f})"
        )

    if args.save_schedule:
        save_schedule(result.schedule, args.save_schedule)
        print(f"\nschedule written to {args.save_schedule}")

    if args.svg_gantt:
        from repro.analysis.svg_gantt import save_gantt_svg

        save_gantt_svg(result.schedule, args.svg_gantt)
        print(f"\nSVG Gantt written to {args.svg_gantt}")

    if telemetry is not None and "util.edge.busy_frac" in telemetry.metrics:
        print()
        print(
            "utilization:  "
            + "  ".join(
                f"{name} {telemetry.metrics.gauge(f'util.{name}.busy_frac').value:.0%}"
                for name in ("edge", "cloud", "uplink", "downlink")
            )
        )

    if args.telemetry_out:
        write_telemetry_jsonl(
            args.telemetry_out,
            [
                telemetry_record(
                    experiment="simulate",
                    scheduler=policy,
                    telemetry=telemetry if telemetry is not None else RunTelemetry(),
                    x=None,
                    n=1,
                )
            ],
        )
        print(f"\ntelemetry written to {args.telemetry_out}")

    if args.trace_out or args.trace_chrome:
        from repro.obs.tracing import collect_trace, write_chrome_trace, write_trace_jsonl

        trace = collect_trace(hooks)
        if args.trace_out:
            n_lines = write_trace_jsonl(args.trace_out, trace)
            print(f"\ntrace written to {args.trace_out} ({n_lines} lines)")
        if args.trace_chrome:
            n_events = write_chrome_trace(args.trace_chrome, trace)
            print(f"\nChrome trace written to {args.trace_chrome} ({n_events} events)")

    return 0 if not errors else 1


if __name__ == "__main__":
    raise SystemExit(main())
