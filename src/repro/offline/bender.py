"""Offline optimal max-stretch on a single machine (Bender et al. [3], [4]).

With one processor, preemption, and known release dates, the minimal
achievable max-stretch is the smallest ``S`` such that the deadlines
``d_i = r_i + S * m_i`` (``m_i`` = the job's dedicated execution time)
are EDF-feasible.  Feasibility is monotone in ``S``, so a binary search
to relative precision ``eps`` yields the optimum; [4] obtains the exact
value with a more intricate search over critical stretch values, with
"better time complexity but similar bounds" (the paper, §II).

This is the engine behind the Edge-Only baseline and serves as the
ground-truth lower bound in single-machine tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.offline.edf_feasibility import edf_preemptive
from repro.util.search import binary_search_min


@dataclass(frozen=True)
class SingleMachineOptimum:
    """Optimal stretch target plus the witnessing EDF completions."""

    stretch: float
    deadlines: np.ndarray
    completion: np.ndarray


def optimal_max_stretch_single_machine(
    works: Sequence[float],
    releases: Sequence[float],
    *,
    speed: float = 1.0,
    min_times: Sequence[float] | None = None,
    eps: float = 1e-6,
) -> SingleMachineOptimum:
    """Minimal max-stretch on one machine with preemption.

    ``min_times`` overrides the stretch denominators (the edge-cloud
    adaptation uses ``min(t_e, t_c)`` even for edge-only execution);
    by default they are the dedicated times ``works / speed``.
    """
    works = np.asarray(works, dtype=np.float64)
    releases = np.asarray(releases, dtype=np.float64)
    if len(works) == 0:
        return SingleMachineOptimum(1.0, np.zeros(0), np.zeros(0))
    if min_times is None:
        min_times = works / speed
    else:
        min_times = np.asarray(min_times, dtype=np.float64)
        if len(min_times) != len(works):
            raise ModelError("min_times must match works in length")
        if (min_times <= 0).any():
            raise ModelError("min_times must be positive")

    def feasible(stretch: float) -> bool:
        deadlines = releases + stretch * min_times
        return edf_preemptive(works, releases, deadlines, speed=speed).feasible

    best = binary_search_min(feasible, 1.0, 4.0, eps=eps)
    deadlines = releases + best * min_times
    result = edf_preemptive(works, releases, deadlines, speed=speed)
    return SingleMachineOptimum(best, deadlines, result.completion)
