"""Offline/exact algorithms, bounds, and NP-hardness reduction constructions."""

from repro.offline.bender import SingleMachineOptimum, optimal_max_stretch_single_machine
from repro.offline.bender_exact import (
    ExactOptimum,
    critical_stretch_values,
    optimal_max_stretch_exact,
)
from repro.offline.bounds import aggregate_capacity_bound, max_stretch_lower_bound
from repro.offline.bruteforce import (
    EdgeCloudSolution,
    MmshSolution,
    edge_cloud_bruteforce,
    mmsh_optimal,
)
from repro.offline.edf_feasibility import EdfResult, edf_feasible, edf_preemptive
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.offline.local_search import LocalSearchResult, improve_offline
from repro.offline.partition import three_partition, two_partition_eq
from repro.offline.reductions import (
    MmshReduction,
    mmsh_as_edge_cloud,
    reduction_from_2partition_eq,
    reduction_from_3partition,
    yes_assignment_from_2partition,
)
from repro.offline.spt import (
    completions_of_order,
    max_stretch_of_order,
    spt_max_stretch,
    spt_order,
)

__all__ = [
    "optimal_max_stretch_single_machine",
    "SingleMachineOptimum",
    "optimal_max_stretch_exact",
    "ExactOptimum",
    "critical_stretch_values",
    "edf_preemptive",
    "edf_feasible",
    "EdfResult",
    "spt_order",
    "spt_max_stretch",
    "max_stretch_of_order",
    "completions_of_order",
    "mmsh_optimal",
    "MmshSolution",
    "edge_cloud_bruteforce",
    "EdgeCloudSolution",
    "FixedPolicyScheduler",
    "improve_offline",
    "LocalSearchResult",
    "two_partition_eq",
    "three_partition",
    "reduction_from_2partition_eq",
    "reduction_from_3partition",
    "mmsh_as_edge_cloud",
    "yes_assignment_from_2partition",
    "MmshReduction",
    "aggregate_capacity_bound",
    "max_stretch_lower_bound",
]
