"""Exact offline max-stretch optimum on one machine (after [4]).

The bisection of :mod:`repro.offline.bender` is approximate (to ε).
The paper notes that Legrand et al. [4] compute the *exact* optimum in
polynomial time.  This module implements that idea in its cleanest
form:

Deadlines are ``d_i(S) = r_i + S * m_i``.  As the target stretch ``S``
grows, the EDF priority *order* only changes where two deadlines cross:
``r_i + S m_i = r_j + S m_j``, i.e. at the critical values
``S = (r_j - r_i) / (m_i - m_j)``.  Between consecutive critical
values the EDF order — and hence the whole preemptive EDF schedule and
its completion times ``C_i`` — is constant.  Within such an interval,
feasibility ``C_i <= r_i + S m_i`` is equivalent to
``S >= max_i (C_i - r_i) / m_i``, so the minimal feasible ``S`` inside
the interval is available in closed form.  Scanning the ``O(n^2)``
critical values (binary search over them) yields the exact optimum.

Degenerate ties (equal deadlines at the probe point) are broken by job
index, consistently with the EDF simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.offline.edf_feasibility import edf_preemptive

_EPS = 1e-12


@dataclass(frozen=True)
class ExactOptimum:
    """The exact optimal stretch and its witnessing completions."""

    stretch: float
    completion: np.ndarray


def _max_stretch_of_order(
    works: np.ndarray,
    releases: np.ndarray,
    min_times: np.ndarray,
    probe_stretch: float,
    speed: float,
) -> tuple[float, np.ndarray]:
    """EDF-simulate with the order induced by ``probe_stretch``; return
    the minimal stretch that order supports and its completions."""
    deadlines = releases + probe_stretch * min_times
    result = edf_preemptive(works, releases, deadlines, speed=speed)
    # Completion times depend only on the *order*, not the deadline
    # values, so they are valid for every S in the probe's interval.
    completions = result.completion
    needed = float(((completions - releases) / min_times).max())
    return needed, completions


def critical_stretch_values(releases: np.ndarray, min_times: np.ndarray) -> np.ndarray:
    """All positive S where two deadlines cross (sorted, deduplicated)."""
    n = len(releases)
    values = []
    for i in range(n):
        for j in range(i + 1, n):
            dm = min_times[i] - min_times[j]
            if abs(dm) < _EPS:
                continue
            s = (releases[j] - releases[i]) / dm
            if s > 0:
                values.append(s)
    return np.unique(np.asarray(values, dtype=np.float64))


def optimal_max_stretch_exact(
    works,
    releases,
    *,
    speed: float = 1.0,
    min_times=None,
) -> ExactOptimum:
    """Exact minimal max-stretch on one machine with preemption."""
    works = np.asarray(works, dtype=np.float64)
    releases = np.asarray(releases, dtype=np.float64)
    if len(works) != len(releases):
        raise ModelError("works and releases must have equal length")
    if len(works) == 0:
        return ExactOptimum(1.0, np.zeros(0))
    if (works <= 0).any():
        raise ModelError("works must be positive")
    if speed <= 0:
        raise ModelError(f"speed must be positive, got {speed}")
    if min_times is None:
        min_times = works / speed
    else:
        min_times = np.asarray(min_times, dtype=np.float64)
        if (min_times <= 0).any():
            raise ModelError("min_times must be positive")

    crossings = critical_stretch_values(releases, min_times)
    # One probe per interval: below the first crossing, between each
    # consecutive pair, and above the last.  Every probed order yields
    # a *concrete* preemptive schedule whose max-stretch is ``needed``,
    # so each is achievable; conversely the optimal order is the one
    # holding just above the optimum S* (its deadlines stay met for all
    # S > S*, forcing needed = S*), so the minimum over probes is exact.
    boundaries = [0.0] + [float(c) for c in crossings]
    best = np.inf
    best_completions: np.ndarray | None = None

    for idx in range(len(boundaries)):
        lo = boundaries[idx]
        hi = boundaries[idx + 1] if idx + 1 < len(boundaries) else np.inf
        probe = lo + 1.0 if np.isinf(hi) else 0.5 * (lo + hi)
        needed, completions = _max_stretch_of_order(
            works, releases, min_times, probe, speed
        )
        if needed < best:
            best = needed
            best_completions = completions

    assert best_completions is not None
    return ExactOptimum(float(best), best_completions)
