"""Exact (exponential) solvers for small offline instances.

Two brute forces:

* :func:`mmsh_optimal` — the MMSH problem of Section IV: homogeneous
  machines, no release dates.  By Lemma 2 each machine runs its jobs
  shortest-first, so a schedule is exactly a partition of the jobs;
  branch-and-bound over partitions with symmetry pruning.
* :func:`edge_cloud_bruteforce` — the full edge-cloud model, minimized
  over the (allocation × priority) fixed-policy class, replayed through
  the real engine.  Exponential; intended for n <= 6 sanity checks of
  the heuristics (e.g. the Figure 1 example).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.resources import Resource, cloud, edge
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate


@dataclass(frozen=True)
class MmshSolution:
    """Optimal MMSH value and a witnessing machine assignment."""

    max_stretch: float
    assignment: tuple[int, ...]  # machine index per job


def mmsh_optimal(works: Sequence[float], n_machines: int) -> MmshSolution:
    """Exact minimal max-stretch for MMSH (no release dates).

    Branch-and-bound over job→machine assignments.  Jobs are placed in
    SPT order (optimal per machine by Lemma 2), so the stretch of a job
    placed on a machine with accumulated load ``L`` is ``(L + w) / w``.
    Machines with equal load are interchangeable and only the first is
    branched on.  Exponential in the worst case; fine for n <= ~16.
    """
    works_arr = np.asarray(works, dtype=np.float64)
    n = len(works_arr)
    if n_machines <= 0:
        raise ModelError(f"n_machines must be positive, got {n_machines}")
    if (works_arr <= 0).any():
        raise ModelError("works must be positive")
    if n == 0:
        return MmshSolution(0.0, ())

    order = np.argsort(works_arr, kind="stable")
    sorted_works = works_arr[order]
    loads = [0.0] * n_machines
    best = {"value": np.inf, "assignment": None}
    assignment = [0] * n

    def rec(pos: int, current_max: float) -> None:
        if current_max >= best["value"]:
            return
        if pos == n:
            best["value"] = current_max
            best["assignment"] = assignment.copy()
            return
        w = float(sorted_works[pos])
        seen_loads: set[float] = set()
        for m in range(n_machines):
            if loads[m] in seen_loads:
                continue
            seen_loads.add(loads[m])
            stretch = (loads[m] + w) / w
            new_max = max(current_max, stretch)
            if new_max >= best["value"]:
                continue
            loads[m] += w
            assignment[pos] = m
            rec(pos + 1, new_max)
            loads[m] -= w

    rec(0, 0.0)
    if best["assignment"] is None:  # pragma: no cover - defensive
        raise ModelError("brute force failed to find any assignment")
    # Undo the SPT reordering.
    by_job = [0] * n
    for pos, i in enumerate(order):
        by_job[int(i)] = best["assignment"][pos]
    return MmshSolution(float(best["value"]), tuple(by_job))


@dataclass(frozen=True)
class EdgeCloudSolution:
    """Best fixed policy found by the edge-cloud brute force."""

    max_stretch: float
    allocation: tuple[Resource, ...]
    priority: tuple[int, ...]


def edge_cloud_bruteforce(instance: Instance, *, max_jobs: int = 6) -> EdgeCloudSolution:
    """Minimum max-stretch over all fixed (allocation, priority) policies.

    Every policy is replayed through the event engine, so all model
    constraints (one-port, phases, re-execution) apply.  This is the
    optimum over the fixed-policy class — a valid *upper bound* on the
    true offline optimum and a strong reference for tiny instances
    (fixed policies include all the priority-list schedules; for the
    Figure 1 example it reproduces the paper's optimal value).
    """
    n = instance.n_jobs
    if n > max_jobs:
        raise ModelError(
            f"edge_cloud_bruteforce is exponential; {n} jobs > max_jobs={max_jobs}"
        )
    if n == 0:
        return EdgeCloudSolution(0.0, (), ())

    options: list[list[Resource]] = []
    for job in instance.jobs:
        opts = [edge(job.origin)]
        opts.extend(cloud(k) for k in range(instance.platform.n_cloud))
        options.append(opts)

    best: EdgeCloudSolution | None = None
    for allocation in itertools.product(*options):
        for priority in itertools.permutations(range(n)):
            scheduler = FixedPolicyScheduler(allocation, priority)
            result = simulate(instance, scheduler, record_trace=False)
            if best is None or result.max_stretch < best.max_stretch:
                best = EdgeCloudSolution(result.max_stretch, tuple(allocation), tuple(priority))
    assert best is not None
    return best
