"""Offline local search over fixed policies.

The brute force (:mod:`repro.offline.bruteforce`) is exact but caps out
around six jobs.  For medium instances (tens of jobs) this module runs
a seeded multi-restart local search over the same policy class —
(allocation, priority) pairs replayed through the real engine — giving
a strong offline *reference* value to measure the online heuristics
against.  It is an upper bound on the true offline optimum (and is
itself bounded below by :mod:`repro.offline.bounds`).

Moves:

* flip one job's allocation (origin edge <-> some cloud processor);
* swap two adjacent jobs in the priority list;
* move one job to a random priority position.

Simulated-annealing acceptance with a geometric temperature schedule;
the best-ever policy is kept, so the result never regresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError, SimulationError
from repro.core.instance import Instance
from repro.core.resources import Resource, cloud, edge
from repro.offline.list_scheduler import FixedPolicyScheduler
from repro.sim.engine import simulate
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class LocalSearchResult:
    """Best policy found and its value."""

    max_stretch: float
    allocation: tuple[Resource, ...]
    priority: tuple[int, ...]
    evaluations: int


def _evaluate(instance: Instance, allocation, priority) -> float:
    try:
        result = simulate(
            instance,
            FixedPolicyScheduler(list(allocation), list(priority)),
            record_trace=False,
        )
    except SimulationError:
        # A pathological fixed policy (should not happen: fixed
        # policies always progress) — treat as infinitely bad.
        return math.inf
    return result.max_stretch


def _initial_policy(instance: Instance, rng: np.random.Generator):
    """Start from each job's best dedicated resource, min-time priority."""
    allocation = []
    for job in instance.jobs:
        best = edge(job.origin)
        best_time = job.edge_time(instance.platform.edge_speeds[job.origin])
        for k, speed in enumerate(instance.platform.cloud_speeds):
            t = job.cloud_time(speed)
            if t < best_time:
                best, best_time = cloud(k), t
        allocation.append(best)
    priority = list(np.lexsort((np.arange(instance.n_jobs), instance.min_time)))
    return allocation, priority


def improve_offline(
    instance: Instance,
    *,
    iterations: int = 400,
    restarts: int = 3,
    initial_temperature: float = 0.25,
    cooling: float = 0.99,
    seed: SeedLike = 0,
) -> LocalSearchResult:
    """Search for a good fixed policy for ``instance``.

    ``iterations`` move proposals per restart; acceptance by simulated
    annealing on the *relative* objective change.  Deterministic for a
    given seed.
    """
    if instance.n_jobs == 0:
        return LocalSearchResult(0.0, (), (), 0)
    if iterations <= 0 or restarts <= 0:
        raise ModelError("iterations and restarts must be positive")
    rng = as_generator(seed)
    n = instance.n_jobs
    n_cloud = instance.platform.n_cloud

    best_value = math.inf
    best_alloc: list[Resource] = []
    best_prio: list[int] = []
    evaluations = 0

    for restart in range(restarts):
        if restart == 0:
            allocation, priority = _initial_policy(instance, rng)
        else:
            allocation = [
                edge(job.origin)
                if n_cloud == 0 or rng.random() < 0.5
                else cloud(int(rng.integers(n_cloud)))
                for job in instance.jobs
            ]
            priority = list(rng.permutation(n))

        value = _evaluate(instance, allocation, priority)
        evaluations += 1
        if value < best_value:
            best_value, best_alloc, best_prio = value, list(allocation), list(priority)

        temperature = initial_temperature
        for _ in range(iterations):
            new_alloc = list(allocation)
            new_prio = list(priority)
            move = rng.integers(3) if n_cloud else rng.integers(1, 3)
            if move == 0:
                i = int(rng.integers(n))
                if new_alloc[i].is_edge:
                    new_alloc[i] = cloud(int(rng.integers(n_cloud)))
                else:
                    new_alloc[i] = edge(instance.jobs[i].origin)
            elif move == 1 and n > 1:
                p = int(rng.integers(n - 1))
                new_prio[p], new_prio[p + 1] = new_prio[p + 1], new_prio[p]
            elif n > 1:
                src = int(rng.integers(n))
                dst = int(rng.integers(n))
                job_id = new_prio.pop(src)
                new_prio.insert(dst, job_id)

            new_value = _evaluate(instance, new_alloc, new_prio)
            evaluations += 1
            delta = (new_value - value) / max(value, 1e-12)
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                allocation, priority, value = new_alloc, new_prio, new_value
                if value < best_value:
                    best_value = value
                    best_alloc, best_prio = list(allocation), list(priority)
            temperature *= cooling

    return LocalSearchResult(
        max_stretch=best_value,
        allocation=tuple(best_alloc),
        priority=tuple(best_prio),
        evaluations=evaluations,
    )
