"""Fixed-policy list scheduler.

Runs the engine with a *frozen* policy: every job has a fixed resource
and the priority order never changes.  Used to (a) replay hand-built
schedules such as the paper's Figure 1 example, and (b) enumerate the
(allocation × priority) policy class in the offline brute force.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ModelError
from repro.core.resources import Resource
from repro.schedulers.base import BaseScheduler
from repro.sim.decision import Decision
from repro.sim.events import Event
from repro.sim.view import SimulationView


class FixedPolicyScheduler(BaseScheduler):
    """Static allocation + static priority, re-dispatched at every event."""

    name = "fixed-policy"

    def __init__(self, allocation: Sequence[Resource], priority: Sequence[int]):
        """``allocation[i]`` is job ``i``'s resource; ``priority`` lists
        job ids from most to least urgent and must cover all jobs."""
        self.allocation = list(allocation)
        self.priority = list(priority)
        if sorted(self.priority) != list(range(len(self.allocation))):
            raise ModelError("priority must be a permutation of all job indices")

    def decide(self, view: SimulationView, events: Sequence[Event]) -> Decision:
        live = set(int(i) for i in view.live_jobs())
        decision = Decision()
        for i in self.priority:
            if i in live:
                decision.add(i, self.allocation[i])
        return decision
