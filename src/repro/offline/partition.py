"""Exact solvers for the partition problems behind the NP-hardness proofs.

* 2-PARTITION-EQ (Theorem 1's source problem): split ``2n`` integers
  into two halves of *equal cardinality* and equal sum.
* 3-PARTITION (Theorem 2's source problem): partition ``3n`` integers,
  each in ``(B/4, B/2)``, into ``n`` triples of sum ``B``.

Both are exponential/pseudo-polynomial solvers for the small instances
the reduction tests use.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ModelError


def two_partition_eq(values: Sequence[int]) -> tuple[int, ...] | None:
    """Solve 2-PARTITION-EQ exactly.

    Returns the indices of one half (``n`` of the ``2n`` values summing
    to half the total), or ``None`` when no such split exists.
    Dynamic program over (count, sum) states with parent pointers;
    pseudo-polynomial: O(n^2 * total).
    """
    values = list(values)
    if len(values) % 2 != 0:
        raise ModelError(f"2-PARTITION-EQ needs an even count, got {len(values)}")
    if any(v < 0 for v in values):
        raise ModelError("2-PARTITION-EQ values must be non-negative")
    n2 = len(values)
    n = n2 // 2
    total = sum(values)
    if total % 2 != 0:
        return None
    target = total // 2

    # states[(count, sum)] = (prev_count, prev_sum, item) for reconstruction.
    states: dict[tuple[int, int], tuple[int, int, int] | None] = {(0, 0): None}
    for idx, v in enumerate(values):
        # Iterate a snapshot: each item used at most once.
        for (cnt, s), _ in list(states.items()):
            key = (cnt + 1, s + v)
            if cnt + 1 <= n and s + v <= target and key not in states:
                states[key] = (cnt, s, idx)

    if (n, target) not in states:
        return None
    chosen: list[int] = []
    key = (n, target)
    while states[key] is not None:
        cnt, s, idx = states[key]  # type: ignore[misc]
        chosen.append(idx)
        key = (cnt, s)
    return tuple(sorted(chosen))


def three_partition(values: Sequence[int], target: int) -> tuple[tuple[int, ...], ...] | None:
    """Solve 3-PARTITION exactly (triples each summing to ``target``).

    Returns ``n`` index-triples or ``None``.  Backtracking over triples,
    always extending from the smallest unused index; exponential, meant
    for the reduction tests (n <= ~6).
    """
    values = list(values)
    if len(values) % 3 != 0:
        raise ModelError(f"3-PARTITION needs a multiple of 3, got {len(values)}")
    n3 = len(values)
    if sum(values) != (n3 // 3) * target:
        return None

    used = [False] * n3
    triples: list[tuple[int, int, int]] = []

    def rec() -> bool:
        try:
            first = used.index(False)
        except ValueError:
            return True
        used[first] = True
        for j in range(first + 1, n3):
            if used[j]:
                continue
            used[j] = True
            need = target - values[first] - values[j]
            for k in range(j + 1, n3):
                if used[k] or values[k] != need:
                    continue
                used[k] = True
                triples.append((first, j, k))
                if rec():
                    return True
                triples.pop()
                used[k] = False
            used[j] = False
        used[first] = False
        return False

    if rec():
        return tuple(triples)
    return None
