"""Preemptive EDF feasibility on a single machine.

Earliest-Deadline-First is optimal for meeting deadlines on one machine
with preemption and release dates (Horn 1974): a deadline assignment is
feasible iff the EDF schedule meets it.  This is the building block of
the Bender et al. offline optimum (:mod:`repro.offline.bender`) and the
single-machine analogue of the checks inside Edge-Only and SSF-EDF.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ModelError

_TOL = 1e-9


@dataclass(frozen=True)
class EdfResult:
    """Outcome of one EDF simulation."""

    feasible: bool
    completion: np.ndarray  # completion time per job (nan if a deadline was missed first)


def edf_preemptive(
    works: Sequence[float],
    releases: Sequence[float],
    deadlines: Sequence[float],
    *,
    speed: float = 1.0,
) -> EdfResult:
    """Simulate preemptive EDF on one machine of the given ``speed``.

    ``works`` are in work units (time = work / speed).  Returns per-job
    completion times; ``feasible`` is False as soon as some deadline is
    missed (completions of jobs finished before the miss stay valid).
    """
    works = np.asarray(works, dtype=np.float64)
    releases = np.asarray(releases, dtype=np.float64)
    deadlines = np.asarray(deadlines, dtype=np.float64)
    if not (len(works) == len(releases) == len(deadlines)):
        raise ModelError("works, releases, deadlines must have equal length")
    if speed <= 0:
        raise ModelError(f"speed must be positive, got {speed}")
    n = len(works)
    completion = np.full(n, np.nan)
    if n == 0:
        return EdfResult(True, completion)
    if (works <= 0).any():
        raise ModelError("works must be positive")

    order = np.argsort(releases, kind="stable")
    remaining = works / speed  # remaining *time*
    ready: list[tuple[float, int]] = []  # (deadline, job)
    t = float(releases[order[0]])
    pos = 0
    feasible = True

    while pos < n or ready:
        while pos < n and releases[order[pos]] <= t + _TOL:
            i = int(order[pos])
            heapq.heappush(ready, (float(deadlines[i]), i))
            pos += 1
        if not ready:
            t = float(releases[order[pos]])
            continue
        d, i = ready[0]
        next_release = float(releases[order[pos]]) if pos < n else np.inf
        run = min(remaining[i], next_release - t)
        t += run
        remaining[i] -= run
        if remaining[i] <= _TOL * max(1.0, works[i] / speed):
            heapq.heappop(ready)
            completion[i] = t
            if t > deadlines[i] + _TOL * max(1.0, deadlines[i]):
                feasible = False

    return EdfResult(feasible, completion)


def edf_feasible(
    works: Sequence[float],
    releases: Sequence[float],
    deadlines: Sequence[float],
    *,
    speed: float = 1.0,
) -> bool:
    """Shorthand: is the deadline assignment EDF-feasible?"""
    return edf_preemptive(works, releases, deadlines, speed=speed).feasible
