"""Shortest-Processing-Time ordering (Lemma 2 of the paper).

With a single machine and all jobs released at time 0, there is an
optimal max-stretch schedule that runs the jobs from shortest to longest
without preemption.  These helpers compute max-stretch of arbitrary
orders and the SPT optimum; the exchange argument of the lemma is
property-tested in ``tests/offline/test_spt.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import ModelError


def completions_of_order(works: Sequence[float], order: Sequence[int]) -> np.ndarray:
    """Completion time per job (job-index order) when running ``order`` back-to-back."""
    works = np.asarray(works, dtype=np.float64)
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(len(works))):
        raise ModelError("order must be a permutation of all job indices")
    completion = np.empty(len(works))
    t = 0.0
    for i in order:
        t += works[i]
        completion[i] = t
    return completion


def max_stretch_of_order(works: Sequence[float], order: Sequence[int]) -> float:
    """Max-stretch of a non-preemptive sequence on one machine (releases 0)."""
    works = np.asarray(works, dtype=np.float64)
    if len(works) == 0:
        return 0.0
    if (works <= 0).any():
        raise ModelError("works must be positive")
    completion = completions_of_order(works, order)
    return float((completion / works).max())


def spt_order(works: Sequence[float]) -> np.ndarray:
    """Indices sorted shortest-first (the optimal order of Lemma 2)."""
    return np.argsort(np.asarray(works, dtype=np.float64), kind="stable")


def spt_max_stretch(works: Sequence[float]) -> float:
    """Optimal single-machine max-stretch with all releases at 0."""
    return max_stretch_of_order(works, spt_order(works))
