"""The NP-hardness reduction constructions of Section IV.

* Theorem 1 (weak NP-completeness, 2 machines): from a 2-PARTITION-EQ
  instance ``{a_1..a_2n}`` with ``sum = 2S``, build ``2n + 2`` jobs —
  ``w_i = n*S + a_i`` plus two big jobs of ``(n+1)*S`` — on two
  homogeneous machines; a max-stretch of ``(n^2+n+2)/(n+1)`` is
  achievable iff the partition instance is a yes-instance.
* Theorem 2 (strong NP-completeness, n machines): from a 3-PARTITION
  instance ``{a_1..a_3n}`` with triple-sum ``B``, build ``4n`` jobs —
  ``w_i = a_i`` plus ``n`` big jobs of ``B/2`` — on ``n`` machines;
  max-stretch 3 is achievable iff the 3-PARTITION instance is a
  yes-instance.
* Theorem 3's wrapper: any MMSH instance embeds into MinMaxStretch-
  EdgeCloud with one speed-1 edge unit, ``p - 1`` cloud processors and
  zero communication costs.

The constructions are pure data; the equivalences are property-tested
against the exact solvers of :mod:`repro.offline.partition` and
:mod:`repro.offline.bruteforce`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform


@dataclass(frozen=True)
class MmshReduction:
    """An MMSH instance produced by a reduction, with its decision target."""

    works: tuple[float, ...]
    n_machines: int
    target_stretch: float


def reduction_from_2partition_eq(values: Sequence[int]) -> MmshReduction:
    """Theorem 1: 2-PARTITION-EQ -> MMSH with two machines."""
    values = list(values)
    if len(values) % 2 != 0 or len(values) == 0:
        raise ModelError(f"need a positive even count of values, got {len(values)}")
    if any(v <= 0 for v in values):
        raise ModelError("2-PARTITION-EQ values must be positive for the reduction")
    total = sum(values)
    if total % 2 != 0:
        # The reduction is still well defined; the instance is just a no-instance.
        pass
    n = len(values) // 2
    s = Fraction(total, 2)
    works = [float(n * s + a) for a in values]
    works += [float((n + 1) * s)] * 2
    target = Fraction(n * n + n + 2, n + 1)
    return MmshReduction(tuple(works), 2, float(target))


def reduction_from_3partition(values: Sequence[int], target_sum: int) -> MmshReduction:
    """Theorem 2: 3-PARTITION -> MMSH with ``n`` machines."""
    values = list(values)
    if len(values) % 3 != 0 or len(values) == 0:
        raise ModelError(f"need a positive multiple of 3 values, got {len(values)}")
    n = len(values) // 3
    if any(not (Fraction(target_sum, 4) < v < Fraction(target_sum, 2)) for v in values):
        raise ModelError(
            "3-PARTITION requires every value strictly between B/4 and B/2"
        )
    works = [float(v) for v in values]
    works += [float(Fraction(target_sum, 2))] * n
    return MmshReduction(tuple(works), n, 3.0)


def mmsh_as_edge_cloud(reduction: MmshReduction) -> Instance:
    """Theorem 3's embedding: MMSH on ``p`` machines == edge-cloud with
    one speed-1 edge unit, ``p - 1`` cloud processors, zero comms."""
    platform = Platform.create(edge_speeds=[1.0], n_cloud=reduction.n_machines - 1)
    jobs = [Job(origin=0, work=w, release=0.0, up=0.0, dn=0.0) for w in reduction.works]
    return Instance.create(platform, jobs)


def yes_assignment_from_2partition(
    values: Sequence[int], subset: Sequence[int]
) -> tuple[int, ...]:
    """Machine assignment witnessing the target stretch for a yes-instance.

    ``subset`` indexes the half chosen by the partition solver; machine 0
    gets those jobs plus the first big job, machine 1 the rest.
    """
    n2 = len(values)
    chosen = set(subset)
    assignment = [0 if i in chosen else 1 for i in range(n2)]
    assignment += [0, 1]  # the two big jobs
    return tuple(assignment)
