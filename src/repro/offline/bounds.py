"""Lower bounds on the offline optimal max-stretch.

Heuristics can only be judged against something; NP-hardness (Section
IV) rules out exact optima at scale, so we compute *valid relaxation
bounds*:

* every stretch is at least 1 (a job cannot beat its dedicated time);
* the aggregate-capacity bound: if a target stretch ``St`` is feasible,
  then for every pair of release dates ``a <= r_i`` and induced
  deadlines ``d_j(St) = r_j + St * m_j``, the *total work* of the jobs
  entirely contained in the window ``[a, d_j]`` must fit into it even
  on an idealized platform where work migrates freely and the whole
  platform processes ``sum(s) + sum(cloud speeds)`` work units per time
  unit, with communications free.  The smallest ``St`` passing all
  window checks is a lower bound on the optimum.

The window argument relaxes one-port communication, no-migration, and
per-job sequentiality, so it can be loose — but it is *sound*, which is
what the tests and benches need.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import Instance
from repro.util.search import binary_search_min
from repro.workloads.release import aggregated_speed

_TOL = 1e-9


def min_compute_time(instance: Instance) -> np.ndarray:
    """Per-job compute time on its fastest processor, communications free."""
    edge_speeds = np.asarray(instance.platform.edge_speeds)
    best_cloud = max(instance.platform.cloud_speeds, default=0.0)
    best_speed = np.maximum(edge_speeds[instance.origin], best_cloud)
    return instance.work / best_speed


def aggregate_capacity_bound(instance: Instance, *, eps: float = 1e-4) -> float:
    """Window-based lower bound on the optimal max-stretch (see module docs)."""
    n = instance.n_jobs
    if n == 0:
        return 0.0
    release = instance.release
    min_time = instance.min_time
    demand = instance.work  # work units; capacity is in work units per time
    capacity = aggregated_speed(instance.platform)
    starts = np.unique(release)

    def feasible(stretch: float) -> bool:
        deadlines = release + stretch * min_time
        for a in starts:
            in_window = release >= a - _TOL
            if not in_window.any():
                continue
            d = deadlines[in_window]
            w = demand[in_window]
            order = np.argsort(d)
            cum = np.cumsum(w[order])
            # All jobs with deadline <= d[k] must fit in [a, d[k]].
            room = (d[order] - a) * capacity
            if (cum > room * (1 + _TOL) + _TOL).any():
                return False
        return True

    return binary_search_min(feasible, 1.0, 4.0, eps=eps)


def max_stretch_lower_bound(instance: Instance, *, eps: float = 1e-4) -> float:
    """Best available lower bound: max of the trivial and window bounds."""
    if instance.n_jobs == 0:
        return 0.0
    return max(1.0, aggregate_capacity_bound(instance, eps=eps))
