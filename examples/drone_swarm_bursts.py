"""Drone swarm with bursty job arrivals (disaster-recovery scenario).

The paper motivates edge-cloud scheduling with flying drones and
disaster recovery.  A search-and-rescue swarm is the textbook bursty
workload: when a drone line sweeps a debris field, all units fire
detection jobs at once, then go quiet while repositioning.

This example compares the heuristics under uniform vs bursty arrivals
at the *same average load*, showing that burstiness — transient
overload the uniform release model smooths away — is where max-stretch
fairness is genuinely hard, and prints an SSF-EDF response-time
breakdown plus a Gantt zoom on one burst.

Run:  python examples/drone_swarm_bursts.py
"""

import numpy as np

from repro import Platform, make_scheduler, simulate
from repro.analysis import all_breakdowns, render_gantt, system_timeline
from repro.workloads.arrivals import (
    ArrivalConfig,
    generate_bursty_instance,
    generate_poisson_instance,
)

N_DRONES = 8
N_CLOUD = 3


def swarm_platform() -> Platform:
    """Eight drones with weak onboard compute, a 3-node ground cloud."""
    return Platform.create(edge_speeds=[0.2] * N_DRONES, n_cloud=N_CLOUD)


def main() -> None:
    config = ArrivalConfig(n_jobs=120, ccr=0.5, rate_per_unit=0.02, work_lo=2, work_hi=10)
    platform = swarm_platform()

    smooth = generate_poisson_instance(config, platform=platform, seed=11)
    bursty = generate_bursty_instance(
        config,
        platform=platform,
        burst_factor=15.0,
        on_fraction=0.15,
        cycle=300.0,
        seed=11,
    )

    print(f"{'policy':<10} {'poisson':>9} {'bursty':>9}   (mean max-stretch, 3 seeds)")
    for policy in ("greedy", "srpt", "ssf-edf"):
        cells = []
        for gen, base in (
            (generate_poisson_instance, {}),
            (
                generate_bursty_instance,
                dict(burst_factor=15.0, on_fraction=0.15, cycle=300.0),
            ),
        ):
            vals = []
            for seed in (11, 12, 13):
                inst = gen(config, platform=platform, seed=seed, **base)
                vals.append(simulate(inst, make_scheduler(policy)).max_stretch)
            cells.append(np.mean(vals))
        print(f"{policy:<10} {cells[0]:>9.2f} {cells[1]:>9.2f}")

    # Zoom into the bursty run with SSF-EDF.
    result = simulate(bursty, make_scheduler("ssf-edf"))
    timeline = system_timeline(result.schedule, n_samples=300)
    print(f"\nbursty run, ssf-edf: peak jobs in system {timeline.peak_in_system}, "
          f"max-stretch {result.max_stretch:.2f}")

    breakdowns = all_breakdowns(result.schedule)
    waiting = sorted(breakdowns, key=lambda b: -b.waiting)[:5]
    print("\ntop-5 waiting jobs (burst victims):")
    for b in waiting:
        print(
            f"  J{b.job:<3} response {b.response:7.1f}  waiting {b.waiting:7.1f} "
            f"({b.waiting_fraction:.0%})  lost {b.lost:5.1f}"
        )


if __name__ == "__main__":
    main()
