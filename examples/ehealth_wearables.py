"""E-health wearables on heterogeneous links (Kang-style platform).

Another of the paper's motivating applications: wearable health
monitors run inference jobs either on the patient's phone/hub (a slow
CPU or a faster GPU device) or on a hospital cloud, reached over
Wi-Fi, LTE or 3G — exactly the device/channel matrix of the paper's
Kang instances [24].

The example shows (a) the per-channel placement decisions of SSF-EDF —
3G devices essentially never offload, Wi-Fi GPUs rarely need to — and
(b) the policy comparison on the full mixed population, plus the §VII
extension: what happens when the hospital cloud is periodically busy
with other services.

Run:  python examples/ehealth_wearables.py
"""

import numpy as np

from repro import make_scheduler, simulate
from repro.core.metrics import utilization
from repro.sim.availability import periodic_unavailability
from repro.workloads.kang import (
    Channel,
    Device,
    EdgeUnitType,
    KangConfig,
    generate_kang_instance,
)


def main() -> None:
    seed = 42

    # One device of every (device, channel) combination, twice over.
    types = [
        EdgeUnitType(device, channel)
        for device in Device
        for channel in Channel
    ] * 2
    # A loaded clinic: enough contention that offloading pays off even
    # though Kang uplinks (95-870s) dwarf a single job's edge time.
    config = KangConfig(n_jobs=240, n_edge=len(types), n_cloud=5, load=1.0)
    instance = generate_kang_instance(config, types=types, seed=seed)

    result = simulate(instance, make_scheduler("ssf-edf"))
    print("ssf-edf placement by device/channel:")
    offloaded = {i: 0 for i in range(len(types))}
    totals = {i: 0 for i in range(len(types))}
    for js in result.schedule.iter_job_schedules():
        origin = instance.jobs[js.job_id].origin
        totals[origin] += 1
        if js.allocation.is_cloud:
            offloaded[origin] += 1
    by_type: dict[tuple[str, str], list[int]] = {}
    for unit, t in enumerate(types):
        key = (t.device.value, t.channel.value)
        by_type.setdefault(key, [0, 0])
        by_type[key][0] += offloaded[unit]
        by_type[key][1] += totals[unit]
    for (device, channel), (off, tot) in sorted(by_type.items()):
        share = off / tot if tot else 0.0
        print(f"  {device:>3} over {channel:<4}: {off:3d}/{tot:3d} jobs offloaded ({share:.0%})")

    print(f"\nmax-stretch comparison (same population):")
    for policy in ("edge-only", "greedy", "srpt", "ssf-edf"):
        r = simulate(instance, make_scheduler(policy))
        rep = utilization(r.schedule)
        print(
            f"  {policy:<10} max-stretch {r.max_stretch:7.3f}   "
            f"avg {r.average_stretch:6.3f}   cloud share {rep.cloud_fraction:.0%}"
        )

    # §VII future-work scenario: the hospital cloud is co-tenanted and
    # disappears for 40% of every 200-second window.
    horizon = float(instance.release.max()) + float(np.sum(instance.min_time))
    availability = periodic_unavailability(
        config.n_cloud, period=200.0, busy_fraction=0.4, horizon=horizon
    )
    print("\nwith a periodically-busy cloud (40% duty co-tenancy):")
    for policy in ("greedy", "srpt", "ssf-edf"):
        r = simulate(instance, make_scheduler(policy), availability=availability)
        print(f"  {policy:<10} max-stretch {r.max_stretch:7.3f}")


if __name__ == "__main__":
    main()
