"""Regenerate miniature versions of all four paper figures via the API.

The `repro-experiments` CLI does this at reproduction scale; this
example shows the same pipeline programmatically — build a spec, run
it, aggregate, print the series table and write an SVG — at a toy
scale that finishes in about a minute.

Run:  python examples/paper_figures.py
"""

from pathlib import Path

from repro.experiments import (
    aggregate,
    fig2a,
    fig2b,
    fig2c,
    fig2d,
    format_series_table,
    run_experiment,
)
from repro.experiments.svgplot import save_series_svg

OUT_DIR = Path("paper_figures_mini")


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    specs = [
        fig2a(n_jobs=60, n_reps=3, ccrs=(0.1, 1.0, 10.0)),
        fig2b(n_jobs=60, n_reps=3, loads=(0.05, 0.5, 2.0)),
        fig2c(n_jobs_values=(30, 60, 120), n_reps=3),
        fig2d(n_jobs_values=(30, 60, 120), n_reps=3),
    ]
    for spec in specs:
        rows = run_experiment(spec)
        agg = aggregate(rows)
        print(f"\n== {spec.name}: {spec.description} ==")
        print(format_series_table(agg, x_label=spec.x_label))
        target = OUT_DIR / f"{spec.name}.svg"
        save_series_svg(
            agg,
            target,
            title=spec.name,
            x_label=spec.x_label,
            log_x=spec.name == "fig2a",
        )
        print(f"(chart written to {target})")

    print(
        "\nThese are toy sizes; see docs/REPRODUCING.md for the"
        "\nreproduction-scale and paper-scale commands."
    )


if __name__ == "__main__":
    main()
