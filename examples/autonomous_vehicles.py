"""Autonomous-vehicle fleet offloading perception jobs to a cloud.

The paper's introduction motivates edge-cloud scheduling with
autonomous vehicles: each vehicle carries a modest onboard computer
(the edge unit) and can offload heavy perception/planning jobs over a
cellular link to a roadside cloud, paying upload (sensor frames) and
download (decisions) transfers.

This example builds such a fleet, sweeps the offload link quality, and
shows the crossover the paper's Figure 2(a) predicts: with fast links
the cloud-using policies crush Edge-Only; with congested links the
cloud stops paying off and the gap closes.

Run:  python examples/autonomous_vehicles.py
"""

import numpy as np

from repro import Instance, Job, Platform, make_scheduler, simulate
from repro.core.metrics import utilization

N_VEHICLES = 8
N_CLOUD = 4
JOBS_PER_VEHICLE = 6
ONBOARD_SPEED = 0.25  # onboard computer is 4x slower than a cloud core


def build_fleet_instance(mean_link_time: float, seed: int) -> Instance:
    """A fleet scenario; ``mean_link_time`` models cellular congestion."""
    rng = np.random.default_rng(seed)
    platform = Platform.create(edge_speeds=[ONBOARD_SPEED] * N_VEHICLES, n_cloud=N_CLOUD)

    jobs = []
    for vehicle in range(N_VEHICLES):
        # Perception jobs arrive as the vehicle drives (Poisson-ish).
        t = 0.0
        for _ in range(JOBS_PER_VEHICLE):
            t += rng.exponential(8.0)
            work = rng.uniform(2.0, 10.0)  # heavy frames take longer
            up = rng.exponential(mean_link_time)  # sensor frame upload
            dn = 0.25 * up  # decisions are small
            jobs.append(Job(origin=vehicle, work=work, release=t, up=up, dn=dn))
    return Instance.create(platform, jobs)


def main() -> None:
    policies = ("edge-only", "greedy", "srpt", "ssf-edf")
    print(f"{'link (mean s)':>13} | " + " | ".join(f"{p:>9}" for p in policies) + " | cloud share (ssf-edf)")
    for mean_link in (0.5, 2.0, 8.0, 32.0):
        cells = []
        cloud_share = 0.0
        for policy in policies:
            stretches = []
            for seed in range(5):
                instance = build_fleet_instance(mean_link, seed)
                result = simulate(instance, make_scheduler(policy))
                stretches.append(result.max_stretch)
                if policy == "ssf-edf":
                    cloud_share += utilization(result.schedule).cloud_fraction / 5
            cells.append(f"{np.mean(stretches):>9.2f}")
        print(f"{mean_link:>13.1f} | " + " | ".join(cells) + f" | {cloud_share:.0%}")

    print(
        "\nReading: with a fast link almost everything offloads and the"
        "\ncloud-using policies dominate Edge-Only; as the link congests,"
        "\nthe offload share collapses and all policies converge to local"
        "\nexecution - the Figure 2(a) story on a concrete fleet."
    )


if __name__ == "__main__":
    main()
