"""Offline analysis walkthrough: Figure 1, optimality, and NP-hardness.

Reproduces the paper's Section III-C worked example exactly, compares
the online heuristics against the offline brute-force optimum, shows
the single-machine Bender optimum, and demonstrates the Theorem 1
reduction from 2-PARTITION-EQ.

Run:  python examples/offline_analysis.py
"""

from repro import Instance, Job, Platform, make_scheduler, simulate
from repro.core.resources import cloud, edge
from repro.offline import (
    FixedPolicyScheduler,
    edge_cloud_bruteforce,
    mmsh_optimal,
    optimal_max_stretch_single_machine,
    reduction_from_2partition_eq,
    two_partition_eq,
)
from repro.offline.bounds import max_stretch_lower_bound


def figure1_instance() -> Instance:
    """The Section III-C example: one edge unit at speed 1/3, one cloud."""
    platform = Platform.create(edge_speeds=[1 / 3], n_cloud=1)
    jobs = [
        Job(origin=0, work=1, release=0, up=5, dn=5),
        Job(origin=0, work=4, release=0, up=2, dn=2),
        Job(origin=0, work=2, release=3, up=2, dn=1),
        Job(origin=0, work=4 / 3, release=5, up=5, dn=5),
        Job(origin=0, work=2, release=5, up=2, dn=1),
        Job(origin=0, work=1 / 3, release=6, up=5, dn=5),
    ]
    return Instance.create(platform, jobs)


def main() -> None:
    instance = figure1_instance()

    # The schedule of Figure 1, as a fixed policy: J1, J4, J6 on the
    # edge; J2, J3, J5 on the cloud; J6 preempts J4 at t=6.
    allocation = [edge(0), cloud(0), cloud(0), edge(0), cloud(0), edge(0)]
    priority = [0, 5, 1, 2, 4, 3]
    paper = simulate(instance, FixedPolicyScheduler(allocation, priority))
    print("paper's Figure 1 schedule:")
    print(f"  per-job stretches: {[round(s, 4) for s in paper.stretches()]}")
    print(f"  max-stretch:       {paper.max_stretch}  (paper: 5/4)")

    best = edge_cloud_bruteforce(instance)
    lb = max_stretch_lower_bound(instance)
    print(f"\noffline brute force over fixed policies: {best.max_stretch:.4f}")
    print(f"relaxation lower bound:                  {lb:.4f}")

    print("\nonline heuristics on the same instance:")
    for name in ("edge-only", "greedy", "srpt", "ssf-edf"):
        r = simulate(instance, make_scheduler(name))
        print(f"  {name:<10} {r.max_stretch:.4f}")

    # Single machine, release dates, preemption: the Bender offline
    # optimum that powers Edge-Only and SSF-EDF.
    works = [1.0, 4.0, 2.0]
    releases = [0.0, 0.0, 3.0]
    opt = optimal_max_stretch_single_machine(works, releases)
    print(f"\nBender single-machine optimum for w={works}, r={releases}: "
          f"{opt.stretch:.4f}")

    # Theorem 1: a yes-instance of 2-PARTITION-EQ maps to an MMSH
    # instance whose optimal max-stretch hits the target exactly.
    values = [3, 1, 1, 2, 2, 3]
    subset = two_partition_eq(values)
    red = reduction_from_2partition_eq(values)
    sol = mmsh_optimal(list(red.works), red.n_machines)
    print(f"\nTheorem 1 reduction from 2-PARTITION-EQ on {values}:")
    print(f"  partition solver found half: {subset}")
    print(f"  MMSH optimum {sol.max_stretch:.6f} vs target {red.target_stretch:.6f} "
          f"-> {'yes' if sol.max_stretch <= red.target_stretch + 1e-9 else 'no'}-instance")


if __name__ == "__main__":
    main()
