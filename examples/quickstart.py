"""Quickstart: build a platform, submit jobs, compare the four policies.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_SCHEDULERS,
    Instance,
    Job,
    Platform,
    make_scheduler,
    simulate,
)
from repro.core.validation import validate_schedule


def main() -> None:
    # A tiny platform: two edge units (a fast and a slow one) and two
    # speed-1 cloud processors.
    platform = Platform.create(edge_speeds=[0.5, 0.1], n_cloud=2)

    # Five jobs; origins index the edge units.  Work is expressed as
    # time on a speed-1 (cloud) processor; up/dn are transfer times.
    jobs = [
        Job(origin=0, work=4.0, release=0.0, up=1.0, dn=1.0),
        Job(origin=0, work=1.0, release=0.5, up=2.0, dn=2.0),
        Job(origin=1, work=6.0, release=1.0, up=0.5, dn=0.5),
        Job(origin=1, work=2.0, release=2.0, up=4.0, dn=4.0),
        Job(origin=1, work=3.0, release=2.5, up=0.5, dn=0.5),
    ]
    instance = Instance.create(platform, jobs)

    print(f"{'policy':<12} {'max-stretch':>12} {'avg-stretch':>12} {'cloud jobs':>11}")
    for name in PAPER_SCHEDULERS:
        result = simulate(instance, make_scheduler(name))

        # Every run can be independently re-validated against the model
        # constraints (one-port comms, phase ordering, exclusivity...).
        violations = validate_schedule(result.schedule)
        assert not violations, violations

        n_cloud_jobs = sum(
            1
            for js in result.schedule.iter_job_schedules()
            if js.allocation.is_cloud
        )
        print(
            f"{name:<12} {result.max_stretch:>12.3f} "
            f"{result.average_stretch:>12.3f} {n_cloud_jobs:>11d}"
        )

    # Per-job detail for one policy.
    result = simulate(instance, make_scheduler("ssf-edf"))
    print("\nssf-edf, per job:")
    for i, stretch in enumerate(result.stretches()):
        js = result.schedule.job_schedules[i]
        print(
            f"  J{i}: released {jobs[i].release:4.1f}  completed "
            f"{js.completion:6.2f}  on {str(js.allocation):<9} stretch {stretch:.3f}"
        )


if __name__ == "__main__":
    main()
