"""Shared benchmark helpers.

Each ``test_bench_*`` module both *times* the schedulers (the paper's
execution-time study, §VI-B) and *regenerates its figure* as a series
table.  Tables are collected here and printed in the terminal summary,
so ``pytest benchmarks/ --benchmark-only`` ends with every reproduced
figure next to pytest-benchmark's timing table.
"""

from __future__ import annotations

_REPORTS: dict[str, str] = {}


def record_report(name: str, table: str) -> None:
    """Store a rendered figure table for the terminal summary."""
    _REPORTS[name] = table


def run_and_report(spec) -> None:
    """Run an experiment spec and record its series table."""
    from repro.experiments.runner import aggregate, run_experiment
    from repro.experiments.tables import format_series_table

    rows = run_experiment(spec)
    agg = aggregate(rows)
    record_report(
        f"{spec.name}: {spec.description}",
        format_series_table(agg, x_label=spec.x_label),
    )


def pytest_terminal_summary(terminalreporter):
    """Print every reproduced figure after the benchmark tables."""
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("reproduced paper figures (max-stretch series)")
    for name in sorted(_REPORTS):
        tr.write_line("")
        tr.write_line(f"== {name} ==")
        for line in _REPORTS[name].splitlines():
            tr.write_line(line)
