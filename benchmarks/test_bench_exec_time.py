"""§VI-B execution times: scheduling wall-clock vs n, load, and CCR.

Paper findings to reproduce in shape: times grow with n and with load,
stay roughly flat in CCR; SRPT is much faster than SSF-EDF; Greedy's
cost "drastically increases with the load".
"""

import pytest

from conftest import run_and_report
from repro.experiments.exec_time import (
    exec_time_vs_ccr,
    exec_time_vs_load,
    exec_time_vs_n,
)
from repro.experiments.runner import aggregate, run_experiment
from repro.experiments.tables import format_timing_table
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)
import conftest as _bench_conftest


@pytest.fixture(scope="module", params=[50, 100, 200])
def sized_instance(request):
    return request.param, generate_random_instance(
        RandomInstanceConfig(n_jobs=request.param, ccr=1.0, load=0.05),
        platform=paper_random_platform(),
        seed=20210005,
    )


@pytest.mark.parametrize("policy", ["srpt", "ssf-edf"])
def test_scaling_with_n(benchmark, sized_instance, policy):
    """Cost growth in n for the fastest vs the costliest policy."""
    _, instance = sized_instance
    benchmark(lambda: simulate(instance, make_scheduler(policy), record_trace=False))


def _timing_report(spec) -> None:
    rows = run_experiment(spec)
    agg = aggregate(rows)
    _bench_conftest.record_report(
        f"{spec.name}: {spec.description} (seconds)",
        format_timing_table(agg, x_label=spec.x_label),
    )


def test_exec_time_vs_n_table(benchmark):
    spec = exec_time_vs_n(n_values=(50, 100, 200), n_reps=2)
    benchmark.pedantic(lambda: _timing_report(spec), rounds=1, iterations=1)


def test_exec_time_vs_load_table(benchmark):
    spec = exec_time_vs_load(loads=(0.05, 0.5, 2.0), n_jobs=120, n_reps=2)
    benchmark.pedantic(lambda: _timing_report(spec), rounds=1, iterations=1)


def test_exec_time_vs_ccr_table(benchmark):
    spec = exec_time_vs_ccr(ccrs=(0.1, 1.0, 10.0), n_jobs=120, n_reps=2)
    benchmark.pedantic(lambda: _timing_report(spec), rounds=1, iterations=1)
