"""Ablation benches over the design knobs DESIGN.md calls out.

* SSF-EDF α (deadline scaling) and ε (binary-search precision): quality
  vs scheduling cost;
* the Greedy re-execution guard (this reproduction's deviation from the
  literal paper text);
* cloud availability windows (the paper's §VII future-work scenario).
"""

import pytest

from conftest import run_and_report
from repro.experiments.ablations import (
    ablation_alpha,
    ablation_availability,
    ablation_eps,
    ablation_greedy_guard,
    ablation_hetero_cloud,
    ablation_reexec,
)
from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


@pytest.fixture(scope="module")
def instance():
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=120, ccr=1.0, load=0.5),
        platform=paper_random_platform(),
        seed=20210006,
    )


@pytest.mark.parametrize("eps", [1e-1, 1e-3, 1e-6])
def test_ssf_edf_eps_cost(benchmark, instance, eps):
    """The log(1/eps) factor in SSF-EDF's complexity, measured."""
    benchmark(lambda: simulate(instance, SsfEdfScheduler(eps=eps), record_trace=False))


def test_ablation_alpha_table(benchmark):
    spec = ablation_alpha(n_jobs=120, n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)


def test_ablation_eps_table(benchmark):
    spec = ablation_eps(n_jobs=120, n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)


def test_ablation_greedy_guard_table(benchmark):
    spec = ablation_greedy_guard(n_jobs=120, n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)


def test_ablation_reexec_table(benchmark):
    spec = ablation_reexec(n_jobs=120, n_reps=3, loads=(0.05, 1.0))
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)


def test_ablation_hetero_cloud_table(benchmark):
    spec = ablation_hetero_cloud(n_jobs=120, n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)


def test_ablation_availability_table(benchmark):
    spec = ablation_availability(n_jobs=120, n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)
