"""Figure 2(b): max-stretch vs load (random instances, CCR=1).

Paper shape: SSF-EDF stays under ~3 as the load reaches 2 while SRPT
and Greedy blow up, with Greedy overtaking SRPT at high load.
Edge-Only is excluded, as in the paper.
"""

import pytest

from conftest import run_and_report
from repro.experiments.figures import fig2b
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


@pytest.fixture(scope="module")
def loaded_instance():
    """A heavily loaded instance (load=1.5): the regime of interest."""
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=120, ccr=1.0, load=1.5),
        platform=paper_random_platform(),
        seed=20210002,
    )


@pytest.mark.parametrize("policy", ["greedy", "srpt", "ssf-edf"])
def test_scheduling_cost_under_load(benchmark, loaded_instance, policy):
    """Scheduling cost grows with load (paper: Greedy most sensitive)."""
    result = benchmark(
        lambda: simulate(loaded_instance, make_scheduler(policy), record_trace=False)
    )
    assert result.max_stretch >= 1.0 - 1e-9


def test_fig2b_series(benchmark):
    """Regenerate the Figure 2(b) series (scaled: n=120, 3 reps)."""
    spec = fig2b(n_jobs=120, n_reps=3, loads=(0.05, 0.25, 1.0, 2.0))
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)
