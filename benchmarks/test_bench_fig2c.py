"""Figure 2(c): max-stretch vs number of jobs, Kang instances, 20 edge units.

Paper shape: SSF-EDF best (SRPT very close), Greedy behind, Edge-Only
falls away as n grows.
"""

import pytest

from conftest import run_and_report
from repro.experiments.figures import fig2c
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.kang import KangConfig, generate_kang_instance


@pytest.fixture(scope="module")
def kang_instance():
    return generate_kang_instance(
        KangConfig(n_jobs=150, n_edge=20, n_cloud=10, load=0.05), seed=20210003
    )


@pytest.mark.parametrize("policy", ["edge-only", "greedy", "srpt", "ssf-edf"])
def test_scheduling_cost(benchmark, kang_instance, policy):
    """Scheduling cost on a 20-edge-unit Kang instance."""
    result = benchmark(
        lambda: simulate(kang_instance, make_scheduler(policy), record_trace=False)
    )
    assert result.max_stretch >= 1.0 - 1e-9


def test_fig2c_series(benchmark):
    """Regenerate the Figure 2(c) series (scaled: n in {50..200}, 3 reps)."""
    spec = fig2c(n_jobs_values=(50, 100, 200), n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)
