"""Interleaved A/B benchmark of the sweep harness (BENCH_sweep_harness.json).

Not a pytest-benchmark module: this script is run once per measurement
by an external driver that alternates two checkouts of the repo (old
harness vs new) against the *same* pinned sweep, so only interleaved
pairs are compared (the host's throughput drifts tens of percent over
minutes).  It prints exactly one JSON line per invocation.

The sweep is a degradation_mtbf-style heterogeneous grid pinned here
(not taken from the library) so both checkouts build the identical
spec: 5 MTBF points x N_REPS replications, 3 schedulers per cell, with
low-MTBF cells several times costlier than high-MTBF ones.

Modes
-----
* ``serial``    — the serial reference: `run_experiment`, fingerprints.
* ``clean``     — the production pooled path: resilient sweep, 4
                  workers, full telemetry, checkpointed.
* ``pressure``  — the same sweep under deterministic *transient cell
                  failure*: one fixed digest-selected cell of
                  the heaviest point (lowest MTBF — the regime where
                  transient resource exhaustion actually bites) fails
                  its first three attempts during instance generation,
                  mimicking a cell hitting transient machine pressure;
                  run with ``on_error="retry"`` and an exponential
                  backoff.
                  This is the scenario the dispatch overhaul targets
                  twice over: cost-aware LPT dispatch starts the heavy
                  (risky) cells first, so their failures surface while
                  plenty of work remains, and the per-cell deferred
                  backoff overlaps those pauses with that work — where
                  the old harness serializes every pause behind a
                  round barrier with the pool torn down (nothing runs
                  while it sleeps).  Requires
                  SWEEP_BENCH_PRESSURE_DIR to point at a FRESH
                  directory (attempt markers accumulate there).
* ``resume``    — resume a killed ``clean`` run from its checkpoint
                  and fingerprint the completed rows.

Fingerprints hash every row field including telemetry, with only the
nondeterministic wall clocks dropped, so equal fingerprints mean
byte-identical results.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
import time

from repro.experiments import cli
from repro.experiments.config import ExperimentSpec, SchedulerSpec, SweepPoint
from repro.experiments.parallel import run_named_experiment_resilient
from repro.experiments.runner import aggregate, run_experiment
from repro.faults.model import FaultClassParams, exponential_fault_trace
from repro.obs.monitors import DEFAULT_TELEMETRY_HOOKS
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

MTBFS = (25.0, 50.0, 100.0, 200.0, 400.0)
N_JOBS = 12
N_REPS = 9
SEED = 20210608
MTTR_FRACTION = 0.1

PRESSURE_ENV = "SWEEP_BENCH_PRESSURE_DIR"
#: A transient cell fails this many attempts before succeeding.
FAIL_ATTEMPTS = 3
#: Heavy-point cells whose digest falls in this residue class are
#: transient.  At the pinned seed this selects exactly one of the
#: heaviest point's nine replications — one that cost-aware dispatch
#: starts right at t=0, so its whole retry chain can overlap work.
FAIL_EVERY = 7


def _cell_digest(rng) -> str:
    """A deterministic id for the cell owning ``rng``.

    The cell's generator state is a pure function of (root seed, point,
    rep), so hashing it identifies the cell without the factory having
    to know its own coordinates — identically in both checkouts and
    under any execution order.
    """
    return hashlib.sha256(str(rng.bit_generator.state).encode()).hexdigest()


def _maybe_transient_failure(rng) -> None:
    pressure_dir = os.environ.get(PRESSURE_ENV)
    if not pressure_dir:
        return
    digest = _cell_digest(rng)
    if int(digest[:8], 16) % FAIL_EVERY != 0:
        return
    marker = os.path.join(pressure_dir, digest[:16])
    attempts = 0
    if os.path.exists(marker):
        with open(marker) as fh:
            attempts = len(fh.readlines())
    with open(marker, "a") as fh:
        fh.write("x\n")
    if attempts < FAIL_ATTEMPTS:
        raise RuntimeError(
            f"transient pressure (attempt {attempts + 1}/{FAIL_ATTEMPTS})"
        )


def _fault_horizon(instance) -> float:
    return float(instance.release.max() + instance.min_time.sum())


def _make_instance_factory(transient: bool):
    def make_instance(rng):
        if transient:
            _maybe_transient_failure(rng)
        return generate_random_instance(
            RandomInstanceConfig(n_jobs=N_JOBS, ccr=1.0, load=0.5),
            platform=paper_random_platform(),
            seed=rng,
        )

    return make_instance


def _make_faults(mtbf):
    def factory(instance, rng):
        params = FaultClassParams(mtbf=mtbf, mttr=MTTR_FRACTION * mtbf)
        return exponential_fault_trace(
            n_edge=instance.platform.n_edge,
            n_cloud=instance.platform.n_cloud,
            horizon=_fault_horizon(instance),
            seed=rng,
            edge=params,
            cloud=params,
            link=params,
        )

    return factory


def _point(mtbf: float) -> SweepPoint:
    kwargs = {}
    # cost_hint exists only in the new checkout; the old one ignores
    # dispatch order anyway (static chunks).
    if any(f.name == "cost_hint" for f in dataclasses.fields(SweepPoint)):
        kwargs["cost_hint"] = 1.0 / mtbf
    return SweepPoint(
        x=mtbf,
        # Only the heaviest point is subject to transient pressure
        # (and only when the pressure dir is set).
        make_instance=_make_instance_factory(transient=mtbf == min(MTBFS)),
        make_faults=_make_faults(mtbf),
        **kwargs,
    )


def _bench_spec(n_reps: int = N_REPS, seed: int = SEED) -> ExperimentSpec:
    return ExperimentSpec(
        name="bench_sweep_harness",
        description="pinned heterogeneous degradation-style grid",
        x_label="MTBF",
        points=tuple(_point(m) for m in MTBFS),
        schedulers=(
            SchedulerSpec.named("fcfs"),
            SchedulerSpec.named("greedy"),
            SchedulerSpec.named("ssf-edf"),
        ),
        n_reps=n_reps,
        seed=seed,
    )


cli._BUILDERS.setdefault("bench_sweep_harness", _bench_spec)


def _fingerprint_rows(rows) -> str:
    payload = [
        {**r.as_dict(), "wall_time": None, "telemetry": r.telemetry, "trace": r.trace}
        for r in rows
    ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _fingerprint_aggregates(rows) -> str:
    payload = [
        {**dataclasses.asdict(a), "wall_time_mean": None} for a in aggregate(rows)
    ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("serial", "clean", "pressure", "resume"))
    parser.add_argument("--label", default="run", help="checkout label echoed back")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--reps", type=int, default=N_REPS)
    parser.add_argument("--checkpoint", default=None, help="cells JSONL path")
    parser.add_argument(
        "--backoff", type=float, default=1.25, help="retry backoff base (pressure)"
    )
    args = parser.parse_args(argv)

    stats = None
    extra = {}
    try:
        from repro.obs.harness import HarnessStats

        stats = HarnessStats()
    except ImportError:
        pass  # old checkout: no harness telemetry

    kw = dict(n_reps=args.reps, instrument=DEFAULT_TELEMETRY_HOOKS)
    if stats is not None:
        kw["stats"] = stats

    t0 = time.perf_counter()
    if args.mode == "serial":
        rows = run_experiment(_bench_spec(args.reps), instrument=DEFAULT_TELEMETRY_HOOKS)
    elif args.mode == "resume":
        outcome = run_named_experiment_resilient(
            "bench_sweep_harness",
            n_workers=args.workers,
            checkpoint_path=args.checkpoint,
            resume=True,
            **kw,
        )
        rows = outcome.rows
        extra = {
            "n_from_checkpoint": outcome.n_from_checkpoint,
            "n_executed": outcome.n_executed,
        }
    else:
        if args.mode == "pressure":
            pressure_dir = os.environ.get(PRESSURE_ENV)
            if not pressure_dir or os.listdir(pressure_dir):
                print(
                    f"pressure mode needs {PRESSURE_ENV} set to a fresh, "
                    "empty directory",
                    file=sys.stderr,
                )
                return 2
            kw.update(on_error="retry", max_retries=3, retry_backoff=args.backoff)
        outcome = run_named_experiment_resilient(
            "bench_sweep_harness",
            n_workers=args.workers,
            checkpoint_path=args.checkpoint,
            **kw,
        )
        rows = outcome.rows
        extra = {"n_executed": outcome.n_executed, "quarantined": len(outcome.quarantined)}
    wall = time.perf_counter() - t0

    result = {
        "label": args.label,
        "mode": args.mode,
        "wall_s": round(wall, 3),
        "n_rows": len(rows),
        "fingerprint": _fingerprint_rows(rows),
        "agg_fingerprint": _fingerprint_aggregates(rows),
        **extra,
    }
    if stats is not None and stats.cells:
        result["harness"] = {
            "cells": stats.cells,
            "window": stats.window,
            "pool_rebuilds": stats.pool_rebuilds,
            "spec_builds": stats.spec_builds,
            "instance_builds": stats.instance_builds,
            "pickle_bytes": stats.pickle_bytes,
        }
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
