"""Figure 2(d): max-stretch vs number of jobs, Kang instances, 100 edge units.

Paper shape: same ordering as 2(c), but with 100 edge units competing
for 10 cloud processors Greedy closes in on SRPT/SSF-EDF; execution
times are markedly higher than the 20-unit scenario (§VI-B notes up to
16 s for SSF-EDF at paper scale).
"""

import pytest

from conftest import run_and_report
from repro.experiments.figures import fig2d
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.kang import KangConfig, generate_kang_instance


@pytest.fixture(scope="module")
def wide_kang_instance():
    return generate_kang_instance(
        KangConfig(n_jobs=150, n_edge=100, n_cloud=10, load=0.05), seed=20210004
    )


@pytest.mark.parametrize("policy", ["edge-only", "greedy", "srpt", "ssf-edf"])
def test_scheduling_cost(benchmark, wide_kang_instance, policy):
    """Scheduling cost with 100 edge units (paper: the expensive case)."""
    result = benchmark(
        lambda: simulate(wide_kang_instance, make_scheduler(policy), record_trace=False)
    )
    assert result.max_stretch >= 1.0 - 1e-9


def test_fig2d_series(benchmark):
    """Regenerate the Figure 2(d) series (scaled: n in {50..200}, 3 reps)."""
    spec = fig2d(n_jobs_values=(50, 100, 200), n_reps=3)
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)
