"""Figure 2(a): max-stretch vs CCR on random instances.

Benchmarks the per-instance scheduling cost of each policy on the
paper's random platform (the §VI-B execution-time study) and
regenerates the figure's series at reproduction scale.

Paper shape: Edge-Only far above everyone at small CCR, converging as
CCR grows; SSF-EDF best throughout, SRPT close behind, Greedy third.
"""

import pytest

from conftest import run_and_report
from repro.experiments.figures import fig2a
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

#: Scheduling-cost benchmark size (one instance, CCR=1, paper platform).
BENCH_N_JOBS = 150


@pytest.fixture(scope="module")
def instance():
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=BENCH_N_JOBS, ccr=1.0, load=0.05),
        platform=paper_random_platform(),
        seed=20210001,
    )


@pytest.mark.parametrize("policy", ["edge-only", "greedy", "srpt", "ssf-edf"])
def test_scheduling_cost(benchmark, instance, policy):
    """Wall-clock to schedule one CCR=1 instance (paper: SRPT fastest)."""
    result = benchmark(
        lambda: simulate(instance, make_scheduler(policy), record_trace=False)
    )
    assert result.max_stretch >= 1.0 - 1e-9


def test_fig2a_series(benchmark):
    """Regenerate the Figure 2(a) series (scaled: n=120, 3 reps)."""
    spec = fig2a(n_jobs=120, n_reps=3, ccrs=(0.1, 0.5, 1.0, 2.0, 10.0))
    benchmark.pedantic(lambda: run_and_report(spec), rounds=1, iterations=1)
