"""Empirical competitiveness: heuristics vs offline references.

Not a paper figure — the paper leaves competitive analysis of the
edge-cloud heuristics as future work (§VII) — but the natural companion
study: how far is each online policy from (a) the relaxation lower
bound and (b) the offline local-search reference, over random
instances.
"""

import numpy as np
import pytest

import conftest as _bench_conftest
from repro.analysis.competitive import empirical_competitive_ratios
from repro.offline.local_search import improve_offline
from repro.schedulers.registry import make_scheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)

POLICIES = ("edge-only", "greedy", "srpt", "ssf-edf", "fcfs")


def _factory(rng: np.random.Generator):
    return generate_random_instance(
        RandomInstanceConfig(n_jobs=40, ccr=1.0, load=0.5),
        platform=paper_random_platform(),
        seed=rng,
    )


def test_ratios_to_lower_bound(benchmark):
    """Table: max-stretch / relaxation-lower-bound per policy."""

    def run():
        summaries = empirical_competitive_ratios(
            _factory, POLICIES, n_instances=10, seed=20210007
        )
        lines = [f"{'policy':<10} {'mean':>7} {'median':>7} {'worst':>7}"]
        for s in summaries:
            lines.append(
                f"{s.scheduler:<10} {s.mean_ratio:>7.2f} {s.median_ratio:>7.2f} "
                f"{s.max_ratio:>7.2f}"
            )
        _bench_conftest.record_report(
            "competitive: ratio to relaxation lower bound (random, load 0.5)",
            "\n".join(lines),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_gap_to_offline_reference(benchmark):
    """Table: online heuristics vs the offline local-search policy.

    Small instances (n=12) with a generous search budget: the reference
    must actually approximate the offline optimum to be meaningful (at
    larger n an unconverged search is *weaker* than the online
    heuristics and the ratios invert).
    """

    def run():
        rng = np.random.default_rng(20210008)
        lines = [f"{'policy':<10} {'mean gap':>9} {'worst gap':>10}"]
        gaps = {p: [] for p in POLICIES}
        for _ in range(5):
            inst = generate_random_instance(
                RandomInstanceConfig(n_jobs=12, ccr=1.0, load=0.5),
                platform=paper_random_platform(),
                seed=rng,
            )
            reference = improve_offline(inst, iterations=400, restarts=3, seed=1)
            for p in POLICIES:
                r = simulate(inst, make_scheduler(p), record_trace=False)
                gaps[p].append(r.max_stretch / reference.max_stretch)
        for p in POLICIES:
            values = np.asarray(gaps[p])
            lines.append(f"{p:<10} {values.mean():>9.2f} {values.max():>10.2f}")
        _bench_conftest.record_report(
            "competitive: ratio to offline local-search reference", "\n".join(lines)
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
