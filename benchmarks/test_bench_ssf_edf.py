"""SSF-EDF hot path: placement kernel + decision reuse.

Times the paper-style workload the incremental SSF-EDF work targeted
(see BENCH_ssf_edf_hotpath.json for the recorded before/after and the
measurement protocol), and checks that the ``incremental=False``
reference — the historical rebuild-at-every-event behavior kept for
A/B verification — pays measurable extra work on the same instance.
"""

import pytest

from repro.schedulers.ssf_edf import SsfEdfScheduler
from repro.sim.engine import simulate
from repro.workloads.random_uniform import (
    RandomInstanceConfig,
    generate_random_instance,
    paper_random_platform,
)


@pytest.fixture(scope="module", params=[200, 500])
def loaded_instance(request):
    return request.param, generate_random_instance(
        RandomInstanceConfig(n_jobs=request.param, ccr=1.0, load=1.0),
        platform=paper_random_platform(),
        seed=20210005,
    )


@pytest.mark.parametrize("incremental", [True, False])
def test_ssf_edf_hotpath(benchmark, loaded_instance, incremental):
    """simulate() cost with and without the decision-reuse layer."""
    _, instance = loaded_instance
    benchmark.pedantic(
        lambda: simulate(
            instance, SsfEdfScheduler(incremental=incremental), record_trace=False
        ),
        rounds=3,
        iterations=1,
    )
